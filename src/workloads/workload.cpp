#include "workloads/workload.hpp"

#include "common/logging.hpp"

namespace bfly {

ProgramBuilder::ProgramBuilder(const WorkloadConfig &config, Addr heap_base,
                               std::size_t heap_size)
    : config_(config), rng_(config.seed), heap_(heap_base, heap_size),
      heapBase_(heap_base), heapSize_(heap_size),
      programs_(config.numThreads)
{
    ensure(config_.numThreads > 0, "workload needs at least one thread");
}

staticpass::SiteId
ProgramBuilder::beginSite(const std::string &name)
{
    site_ = sites_.intern(name);
    return site_;
}

void
ProgramBuilder::read(ThreadId t, Addr addr, std::uint16_t size)
{
    Event e = Event::read(addr, size);
    e.site = site_;
    programs_[t].push_back(e);
}

void
ProgramBuilder::write(ThreadId t, Addr addr, std::uint16_t size)
{
    Event e = Event::write(addr, size);
    e.site = site_;
    programs_[t].push_back(e);
}

void
ProgramBuilder::nop(ThreadId t, std::size_t count)
{
    Event e = Event::nop();
    e.site = site_;
    for (std::size_t k = 0; k < count; ++k)
        programs_[t].push_back(e);
}

void
ProgramBuilder::emit(ThreadId t, const Event &e)
{
    Event stamped = e;
    if (stamped.site == staticpass::kNoSite)
        stamped.site = site_;
    programs_[t].push_back(stamped);
}

Addr
ProgramBuilder::malloc(ThreadId t, std::size_t size)
{
    const Addr addr = heap_.malloc(size);
    ensure(addr != kNoAddr, "workload heap exhausted; raise heap size");
    Event e = Event::alloc(addr, static_cast<std::uint16_t>(size));
    e.site = site_;
    programs_[t].push_back(e);
    return addr;
}

void
ProgramBuilder::free(ThreadId t, Addr addr)
{
    const std::size_t size = heap_.free(addr);
    ensure(size > 0, "workload freed an unallocated block (generator bug)");
    Event e = Event::freeOf(addr, static_cast<std::uint16_t>(size));
    e.site = site_;
    programs_[t].push_back(e);
}

void
ProgramBuilder::barrier()
{
    for (auto &p : programs_)
        p.push_back(Event::barrier());
}

bool
ProgramBuilder::budgetExhausted() const
{
    for (const auto &p : programs_) {
        if (p.size() < config_.instrPerThread)
            return false;
    }
    return true;
}

Workload
ProgramBuilder::finish(std::string name)
{
    Workload w;
    w.name = std::move(name);
    w.programs = std::move(programs_);
    w.heapBase = heapBase_;
    w.heapLimit = heapBase_ + heapSize_;
    w.sites = std::move(sites_);
    return w;
}

const std::vector<std::pair<std::string, WorkloadFactory>> &
paperWorkloads()
{
    static const std::vector<std::pair<std::string, WorkloadFactory>> reg{
        {"barnes", makeBarnes},
        {"fft", makeFft},
        {"fmm", makeFmm},
        {"ocean", makeOcean},
        {"blackscholes", makeBlackscholes},
        {"lu", makeLu},
    };
    return reg;
}

} // namespace bfly
