/**
 * @file
 * FMM-like workload (Splash-2 fast multipole method).
 *
 * Structure reproduced: a grid of cells allocated once and owned per
 * thread; per-timestep construction of interaction lists (small transient
 * allocations), multipole evaluation reading mostly *neighbouring*
 * threads' cells (locality-limited sharing, unlike BARNES' all-to-all
 * traversals), and private particle updates.
 */

#include "workloads/workload.hpp"

namespace bfly {

Workload
makeFmm(const WorkloadConfig &config)
{
    const unsigned T = config.numThreads;
    ProgramBuilder b(config, 0x10000000, 48 * 1024 * 1024);

    const std::size_t cells_per_thread = 24;
    const std::size_t cell_bytes = 2048;
    const std::size_t list_bytes = 512;
    const std::size_t evals =
        std::max<std::size_t>(48, config.phaseEvents / 6);

    std::vector<std::vector<Addr>> cells(T);
    b.beginSite("fmm/cell-init");
    for (ThreadId t = 0; t < T; ++t) {
        for (std::size_t c = 0; c < cells_per_thread; ++c) {
            const Addr cell = b.malloc(t, cell_bytes);
            cells[t].push_back(cell);
            b.write(t, cell, 8);
        }
    }
    b.barrier();
    b.beginSite("fmm/idle");
    for (ThreadId t = 0; t < T; ++t)
        b.nop(t, config.warmupNops);
    b.barrier();

    while (!b.budgetExhausted()) {
        // Interaction-list construction: transient per-thread allocations.
        std::vector<Addr> lists(T);
        b.beginSite("fmm/list-build");
        for (ThreadId t = 0; t < T; ++t) {
            lists[t] = b.malloc(t, list_bytes);
            for (std::size_t k = 0; k < 8; ++k)
                b.write(t, lists[t] + 16 * k, 8);
        }
        b.barrier();

        // Multipole evaluation: read own cells plus neighbours' cells.
        for (ThreadId t = 0; t < T; ++t) {
            for (std::size_t k = 0; k < evals; ++k) {
                const bool neighbour = b.rng().chance(0.3);
                const ThreadId owner =
                    neighbour
                        ? static_cast<ThreadId>(
                              (t + 1 + b.rng().below(2)) % T)
                        : t;
                const auto &pool = cells[owner];
                const Addr cell = pool[b.rng().below(pool.size())];
                const Addr field = cell + 64 * (k % 32);
                b.beginSite("fmm/multipole-eval");
                b.read(t, field, 8);
                b.read(t, field + 8, 8);
                b.write(t, cells[t][k % cells_per_thread] + 128, 8);
                b.beginSite("fmm/list-walk");
                b.read(t, lists[t] + 16 * (k % 8), 8);
                b.nop(t, 2);
            }
        }
        b.barrier();

        b.beginSite("fmm/list-free");
        for (ThreadId t = 0; t < T; ++t)
            b.free(t, lists[t]);
        b.barrier();
    }

    b.beginSite("fmm/idle");
    for (ThreadId t = 0; t < T; ++t)
        b.nop(t, config.warmupNops);
    b.barrier();
    b.beginSite("fmm/teardown");
    for (ThreadId t = 0; t < T; ++t) {
        for (Addr cell : cells[t])
            b.free(t, cell);
    }
    return b.finish("fmm");
}

} // namespace bfly
