/**
 * @file
 * BARNES-like workload (Splash-2 n-body, Barnes-Hut).
 *
 * Structure reproduced: timesteps that (1) build a shared tree from many
 * small node allocations made concurrently by all threads, (2) compute
 * forces by traversing the tree — reading nodes allocated by *other*
 * threads — and updating private bodies, then (3) tear the tree down.
 *
 * The temporal layout preserves the real benchmark's ratio of phase
 * length to epoch length: cross-thread traversal reads sit roughly half
 * a timestep away from the build allocations and the teardown frees, so
 * they are strictly ordered when the epoch is much shorter than a
 * timestep, but potentially concurrent (flagged) when the epoch grows
 * to timestep scale — the Figure 13 sensitivity.
 */

#include "workloads/workload.hpp"

namespace bfly {

Workload
makeBarnes(const WorkloadConfig &config)
{
    const unsigned T = config.numThreads;
    ProgramBuilder b(config, 0x10000000, 48 * 1024 * 1024);

    const std::size_t node_bytes = 64;
    const std::size_t nodes_per_thread =
        std::max<std::size_t>(16, config.phaseEvents / 18);
    const std::size_t interactions =
        std::max<std::size_t>(32, config.phaseEvents / 7);
    const std::size_t body_bytes = 60 * 1024;
    /** Force-evaluation phases per tree rebuild. Real BARNES rebuilds
     *  every timestep, but a timestep is millions of instructions; the
     *  scaled-down equivalent amortizes the rebuild over several force
     *  phases to preserve the churn-per-epoch ratio. */
    const std::size_t phases_per_rebuild = 30;

    // Private body arrays, allocated and initialized once up front by
    // their owners (the real code loads particle data before stepping).
    std::vector<Addr> bodies(T);
    b.beginSite("barnes/body-alloc");
    for (ThreadId t = 0; t < T; ++t)
        bodies[t] = b.malloc(t, body_bytes);
    b.beginSite("barnes/body-init");
    for (ThreadId t = 0; t < T; ++t) {
        for (std::size_t k = 0; k < body_bytes / 32; ++k)
            b.write(t, bodies[t] + 32 * k, 8);
    }
    b.barrier();
    b.beginSite("barnes/idle");
    for (ThreadId t = 0; t < T; ++t)
        b.nop(t, config.warmupNops); // sequential-init spacer
    b.barrier();

    std::vector<std::vector<Addr>> nodes(T);
    while (!b.budgetExhausted()) {
        // Phase 1: tree build — many small concurrent allocations.
        b.beginSite("barnes/tree-build");
        for (ThreadId t = 0; t < T; ++t) {
            nodes[t].clear();
            for (std::size_t k = 0; k < nodes_per_thread; ++k) {
                const Addr node = b.malloc(t, node_bytes);
                nodes[t].push_back(node);
                b.write(t, node, 8);        // center of mass
                b.write(t, node + 32, 8);   // child pointers
                b.nop(t);
            }
        }
        b.barrier();

        for (std::size_t phase = 0;
             phase < phases_per_rebuild && !b.budgetExhausted();
             ++phase) {
        // Phase 2: force computation — traversals read nodes from every
        // thread's share of the tree; body updates stay private. This is
        // the long phase: it dominates the timestep, so most traversal
        // reads are far (in events) from the build and the teardown.
        for (ThreadId t = 0; t < T; ++t) {
            std::size_t body_cursor = b.rng().below(body_bytes / 32);
            for (std::size_t k = 0; k < interactions; ++k) {
                const bool cross = b.rng().chance(0.01);
                const ThreadId owner =
                    cross ? static_cast<ThreadId>(b.rng().below(T)) : t;
                const auto &pool = nodes[owner];
                const Addr node = pool[b.rng().below(pool.size())];
                b.beginSite("barnes/traverse");
                b.read(t, node, 8);
                b.read(t, node + 32, 8);
                // Bodies are updated in order (the real code walks the
                // thread's body list): good spatial locality.
                body_cursor = (body_cursor + 1) % (body_bytes / 32);
                const Addr body = bodies[t] + 32 * body_cursor;
                b.beginSite("barnes/body-update");
                b.read(t, body, 8);
                b.write(t, body, 8);
                b.nop(t, 2); // force arithmetic
            }
        }
        b.barrier();
        }

        // Phase 3: tree teardown.
        b.beginSite("barnes/tree-teardown");
        for (ThreadId t = 0; t < T; ++t) {
            for (Addr node : nodes[t])
                b.free(t, node);
        }
        b.barrier();
    }

    b.beginSite("barnes/idle");
    for (ThreadId t = 0; t < T; ++t)
        b.nop(t, config.warmupNops); // cooldown before teardown
    b.barrier();
    b.beginSite("barnes/body-teardown");
    for (ThreadId t = 0; t < T; ++t)
        b.free(t, bodies[t]);
    return b.finish("barnes");
}

} // namespace bfly
