/**
 * @file
 * Synthetic workloads for tests, property checks and ablation benches:
 * an unstructured random mix of allocation/access activity, and a
 * taint-propagation mix exercising TAINTCHECK's inheritance chains.
 */

#include "workloads/workload.hpp"

namespace bfly {

Workload
makeRandomMix(const WorkloadConfig &config)
{
    const unsigned T = config.numThreads;
    ProgramBuilder b(config, 0x10000000, 16 * 1024 * 1024);

    // A rotating pool of live blocks per thread; random reads may target
    // any thread's live blocks (benign sharing without synchronization is
    // avoided by only reading blocks allocated before the last barrier).
    std::vector<std::vector<Addr>> live(T), visible(T);

    while (!b.budgetExhausted()) {
        for (ThreadId t = 0; t < T; ++t) {
            for (std::size_t step = 0; step < 64; ++step) {
                const double dice = b.rng().uniform();
                if (dice < 0.08) {
                    const Addr a =
                        b.malloc(t, 16 + 16 * b.rng().below(16));
                    live[t].push_back(a);
                    b.write(t, a, 8);
                } else if (dice < 0.14 && live[t].size() > 1) {
                    const std::size_t k = b.rng().below(live[t].size());
                    b.free(t, live[t][k]);
                    live[t].erase(live[t].begin() + k);
                } else if (dice < 0.55 && !live[t].empty()) {
                    const Addr a =
                        live[t][b.rng().below(live[t].size())];
                    b.read(t, a + 8 * b.rng().below(2), 8);
                } else if (dice < 0.75 && !visible[t].empty()) {
                    // Cross-thread read of a block published at the last
                    // barrier (race-free by construction).
                    const ThreadId u =
                        static_cast<ThreadId>(b.rng().below(T));
                    if (!visible[u].empty()) {
                        const Addr a =
                            visible[u][b.rng().below(visible[u].size())];
                        b.read(t, a, 8);
                    } else {
                        b.nop(t);
                    }
                } else if (dice < 0.9 && !live[t].empty()) {
                    const Addr a =
                        live[t][b.rng().below(live[t].size())];
                    b.write(t, a, 8);
                } else {
                    b.nop(t);
                }
            }
        }
        // Publish current live sets; blocks freed later may still be
        // read before the next barrier... avoid that by snapshotting and
        // never freeing published blocks until the next barrier passes:
        // the free branch above only frees blocks allocated this round
        // when they are not yet published (live minus visible), which we
        // approximate by publishing *after* the frees of the round.
        b.barrier();
        visible = live;
    }
    return b.finish("random-mix");
}

Workload
makeTaintMix(const WorkloadConfig &config)
{
    const unsigned T = config.numThreads;
    ProgramBuilder b(config, 0x10000000, 4 * 1024 * 1024);

    // A shared pool of scalar variables; threads taint, propagate,
    // sanitize and use them. Writes are ownership-partitioned
    // (var % T == t) but reads race deliberately: racy inheritance is
    // exactly what the butterfly TAINTCHECK must handle conservatively,
    // and the oracle replays the actual interleaving either way.
    const std::size_t nvars = 64;
    const Addr vars = b.malloc(0, nvars * 8);
    b.barrier();

    auto var_addr = [&](std::size_t v) { return vars + 8 * v; };

    while (!b.budgetExhausted()) {
        for (ThreadId t = 0; t < T; ++t) {
            for (std::size_t step = 0; step < 48; ++step) {
                const std::size_t own =
                    (t + T * b.rng().below(nvars / T)) % nvars;
                const double dice = b.rng().uniform();
                Event e;
                if (dice < 0.04) {
                    e = Event::taintSrc(var_addr(own), 8);
                } else if (dice < 0.3) {
                    // Sanitization dominates tainting so taint does not
                    // saturate the variable pool (keeps the FP studies
                    // sensitive to window size).
                    e = Event::untaint(var_addr(own), 8);
                } else if (dice < 0.6) {
                    // Mostly intra-partition dataflow with occasional
                    // cross-thread inheritance: realistic ownership
                    // locality (an all-to-all assign graph would let
                    // conservative taint saturate every variable).
                    const std::size_t src =
                        b.rng().chance(0.15)
                            ? b.rng().below(nvars)
                            : (t + T * b.rng().below(nvars / T)) %
                                  nvars;
                    e = Event::assign(var_addr(own), var_addr(src));
                    e.size = 8;
                } else if (dice < 0.8) {
                    const std::size_t s0 =
                        (t + T * b.rng().below(nvars / T)) % nvars;
                    const std::size_t s1 =
                        b.rng().chance(0.15)
                            ? b.rng().below(nvars)
                            : (t + T * b.rng().below(nvars / T)) %
                                  nvars;
                    e = Event::assign2(var_addr(own), var_addr(s0),
                                       var_addr(s1));
                    e.size = 8;
                } else {
                    const std::size_t u =
                        b.rng().chance(0.2)
                            ? b.rng().below(nvars)
                            : (t + T * b.rng().below(nvars / T)) %
                                  nvars;
                    e = Event::use(var_addr(u));
                }
                b.emit(t, e);
            }
        }
        b.barrier();
    }
    return b.finish("taint-mix");
}

} // namespace bfly
