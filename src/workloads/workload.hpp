/**
 * @file
 * Synthetic parallel workloads with the sharing and allocation structure of
 * the paper's benchmark suite (Splash-2: BARNES, FFT, FMM, OCEAN, LU;
 * Parsec 2.0: BLACKSCHOLES).
 *
 * ADDRCHECK's behaviour depends only on the *pattern* of allocations, frees
 * and accesses across threads and time — not on the arithmetic a benchmark
 * performs — so each generator reproduces its namesake's structure:
 * partitioned grids with boundary exchange (ocean), streaming phases with
 * transposes (fft), allocation-heavy tree building with cross-thread
 * traversal (barnes/fmm), blocked factorization with pivot sharing (lu),
 * and embarrassingly-parallel private computation (blackscholes).
 *
 * Threads synchronize with Barrier events, so every workload is race-free:
 * the exact-oracle error count is zero unless a bug is injected
 * (see bugs.hpp), which makes every butterfly-flagged event a measurable
 * false positive.
 */

#ifndef BUTTERFLY_WORKLOADS_WORKLOAD_HPP
#define BUTTERFLY_WORKLOADS_WORKLOAD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/heap.hpp"
#include "common/rng.hpp"
#include "staticpass/site_table.hpp"
#include "trace/event.hpp"

namespace bfly {

/** Generation knobs common to all workloads. */
struct WorkloadConfig
{
    unsigned numThreads = 4;
    std::uint64_t seed = 1;
    /** Approximate events generated per thread. */
    std::size_t instrPerThread = 20000;
    /**
     * Target events per thread per algorithmic timestep. Real Splash-2
     * timesteps span millions of instructions — far more than an epoch —
     * so allocation churn and the cross-thread accesses that follow it
     * are usually epochs apart. Scaled-down runs must preserve that
     * ratio: benchmarks set this to several small-epoch lengths.
     */
    std::size_t phaseEvents = 700;
    /**
     * Idle instructions per thread between the initialization phase and
     * the main loop (and before teardown), mimicking the long sequential
     * init of the real benchmarks. Prevents the initial allocations and
     * final frees from being potentially concurrent with steady-state
     * accesses. 0 = none (unit tests).
     */
    std::size_t warmupNops = 0;
};

/** A generated workload: per-thread programs plus its heap window. */
struct Workload
{
    std::string name;
    std::vector<std::vector<Event>> programs;
    Addr heapBase = 0;
    Addr heapLimit = 0;
    /** Emitting sites the generator declared via beginSite; every event
     *  carries the id of the site that emitted it (kNoSite if none was
     *  active). Input to the static elision pass (src/staticpass/). */
    staticpass::SiteTable sites;

    std::size_t
    totalEvents() const
    {
        std::size_t n = 0;
        for (const auto &p : programs)
            n += p.size();
        return n;
    }
};

/**
 * Helper for emitting per-thread event programs against a shared simulated
 * heap. Tracks per-thread event counts so kernels can run until they hit
 * the configured budget.
 */
class ProgramBuilder
{
  public:
    ProgramBuilder(const WorkloadConfig &config, Addr heap_base,
                   std::size_t heap_size);

    /**
     * Declare the emitting site for everything emitted next, until the
     * next beginSite. Site names are one per static kernel location
     * ("ocean/interior-sweep"), shared by all threads executing it —
     * the classification pass reasons about the location, not the
     * thread. Returns the interned id for tests.
     */
    staticpass::SiteId beginSite(const std::string &name);

    void read(ThreadId t, Addr addr, std::uint16_t size = 8);
    void write(ThreadId t, Addr addr, std::uint16_t size = 8);
    void nop(ThreadId t, std::size_t count = 1);

    /** Emit an arbitrary event (taint sources, assigns, uses, ...). */
    void emit(ThreadId t, const Event &e);

    /** Allocate from the shared heap, emitting an Alloc event. */
    Addr malloc(ThreadId t, std::size_t size);

    /** Free a block, emitting a Free event carrying the block size. */
    void free(ThreadId t, Addr addr);

    /** Emit a Barrier on every thread. */
    void barrier();

    /** Events emitted so far by thread @p t. */
    std::size_t emitted(ThreadId t) const { return programs_[t].size(); }

    /** True once every thread has hit the per-thread budget. */
    bool budgetExhausted() const;

    Rng &rng() { return rng_; }
    const WorkloadConfig &config() const { return config_; }
    SimHeap &heap() { return heap_; }

    Workload finish(std::string name);

  private:
    WorkloadConfig config_;
    Rng rng_;
    SimHeap heap_;
    Addr heapBase_;
    std::size_t heapSize_;
    std::vector<std::vector<Event>> programs_;
    staticpass::SiteTable sites_;
    staticpass::SiteId site_ = staticpass::kNoSite;
};

/** Workload generators (one per paper benchmark). */
Workload makeBarnes(const WorkloadConfig &config);
Workload makeFft(const WorkloadConfig &config);
Workload makeFmm(const WorkloadConfig &config);
Workload makeOcean(const WorkloadConfig &config);
Workload makeBlackscholes(const WorkloadConfig &config);
Workload makeLu(const WorkloadConfig &config);

/** Unstructured random mix (tests, ablations). */
Workload makeRandomMix(const WorkloadConfig &config);

/** Taint-oriented workload: assignments, taint sources, critical uses. */
Workload makeTaintMix(const WorkloadConfig &config);

/** Registry of the six paper benchmarks, in the paper's order. */
using WorkloadFactory = Workload (*)(const WorkloadConfig &);
const std::vector<std::pair<std::string, WorkloadFactory>> &
paperWorkloads();

} // namespace bfly

#endif // BUTTERFLY_WORKLOADS_WORKLOAD_HPP
