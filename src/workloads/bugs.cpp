#include "workloads/bugs.hpp"

#include "common/logging.hpp"

namespace bfly {

std::vector<InjectedBug>
injectBugs(Workload &workload, BugKind kind, std::size_t count, Rng &rng)
{
    std::vector<InjectedBug> planted;
    const unsigned T =
        static_cast<unsigned>(workload.programs.size());

    // A fresh address region outside the workload's heap for
    // never-allocated accesses; inside it for planted alloc sequences.
    Addr wild = workload.heapLimit + 0x1000;

    for (std::size_t n = 0; n < count; ++n) {
        const ThreadId t = static_cast<ThreadId>(rng.below(T));
        auto &prog = workload.programs[t];
        const std::size_t pos =
            prog.empty() ? 0 : rng.below(prog.size());
        auto at = prog.begin() + pos;

        switch (kind) {
          case BugKind::UseAfterFree: {
            // alloc; write; free; read  — the read is the bug.
            const Addr a = wild;
            wild += 64;
            Event seq[4] = {Event::alloc(a, 32), Event::write(a, 8),
                            Event::freeOf(a, 32), Event::read(a, 8)};
            prog.insert(at, seq, seq + 4);
            planted.push_back({kind, t, a});
            break;
          }
          case BugKind::UnallocatedAccess: {
            const Addr a = wild;
            wild += 64;
            prog.insert(at, Event::read(a, 8));
            planted.push_back({kind, t, a});
            break;
          }
          case BugKind::DoubleFree: {
            const Addr a = wild;
            wild += 64;
            Event seq[3] = {Event::alloc(a, 32), Event::freeOf(a, 32),
                            Event::freeOf(a, 32)};
            prog.insert(at, seq, seq + 3);
            planted.push_back({kind, t, a});
            break;
          }
          case BugKind::TaintedJump: {
            const Addr a = wild;
            wild += 64;
            Event assign = Event::assign(a + 8, a);
            assign.size = 8;
            Event seq[3] = {Event::taintSrc(a, 8), assign,
                            Event::use(a + 8)};
            prog.insert(at, seq, seq + 3);
            planted.push_back({kind, t, a + 8});
            break;
          }
        }
    }
    // Injected sequences live past heapLimit; widen the monitored window
    // so lifeguards see them.
    workload.heapLimit = wild;
    return planted;
}

} // namespace bfly
