/**
 * @file
 * FFT-like workload (Splash-2 radix-sqrt(n) FFT).
 *
 * Structure reproduced: a large shared matrix partitioned across threads,
 * alternating local butterfly phases (streaming reads/writes of the
 * thread's own partition) with transpose phases that read every *other*
 * thread's partition, separated by barriers. Each phase allocates and
 * frees a per-thread scratch buffer.
 */

#include "workloads/workload.hpp"

namespace bfly {

Workload
makeFft(const WorkloadConfig &config)
{
    const unsigned T = config.numThreads;
    ProgramBuilder b(config, 0x10000000, 48 * 1024 * 1024);

    const std::size_t partition_bytes = 56 * 1024; // streaming footprint
    const std::size_t stride = 16;
    const std::size_t elems = partition_bytes / stride;
    const std::size_t scratch_bytes = 4 * 1024;
    const std::size_t work_per_phase =
        std::max<std::size_t>(64, config.phaseEvents / 4);

    // Each thread owns one contiguous partition of the shared matrix.
    std::vector<Addr> partition(T);
    b.beginSite("fft/partition-alloc");
    for (ThreadId t = 0; t < T; ++t)
        partition[t] = b.malloc(t, partition_bytes);
    b.barrier();
    b.beginSite("fft/idle");
    for (ThreadId t = 0; t < T; ++t)
        b.nop(t, config.warmupNops);
    b.barrier();

    std::size_t phase = 0;
    while (!b.budgetExhausted()) {
        // Allocate every thread's scratch before any is freed so that
        // first-fit reuse of a freed scratch address by another thread
        // is always barrier-separated (keeps the workload race-free).
        std::vector<Addr> scratches(T);
        b.beginSite("fft/scratch-alloc");
        for (ThreadId t = 0; t < T; ++t)
            scratches[t] = b.malloc(t, scratch_bytes);
        for (ThreadId t = 0; t < T; ++t) {
            const Addr scratch = scratches[t];
            if (phase % 2 == 0) {
                // Local butterfly pass: stream through own partition.
                for (std::size_t k = 0; k < work_per_phase; ++k) {
                    const Addr e = partition[t] +
                                   stride * ((phase * 61 + k) % elems);
                    b.beginSite("fft/butterfly");
                    b.read(t, e, 8);
                    b.write(t, e, 8);
                    b.beginSite("fft/scratch-spill");
                    b.write(t, scratch + stride * (k % 64), 8);
                    b.nop(t);
                }
            } else {
                // Transpose: gather elements from every partition.
                b.beginSite("fft/transpose");
                for (std::size_t k = 0; k < work_per_phase; ++k) {
                    const ThreadId owner =
                        static_cast<ThreadId>((t + k) % T);
                    const Addr src = partition[owner] +
                                     stride * ((k * T + t) % elems);
                    b.read(t, src, 8);
                    b.write(t,
                            partition[t] + stride * ((k * 7) % elems), 8);
                    b.nop(t);
                }
            }
        }
        b.beginSite("fft/scratch-free");
        for (ThreadId t = 0; t < T; ++t)
            b.free(t, scratches[t]);
        b.barrier();
        ++phase;
    }

    b.beginSite("fft/idle");
    for (ThreadId t = 0; t < T; ++t)
        b.nop(t, config.warmupNops);
    b.barrier();
    b.beginSite("fft/teardown");
    for (ThreadId t = 0; t < T; ++t)
        b.free(t, partition[t]);
    return b.finish("fft");
}

} // namespace bfly
