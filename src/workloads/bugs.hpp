/**
 * @file
 * Bug injection for false-negative testing.
 *
 * Theorems 6.1/6.2 promise the butterfly lifeguards flag every error the
 * exact oracle flags. These helpers plant real bugs into generated
 * workloads so the test suite can assert the bugs are (a) caught by the
 * oracle and (b) never missed by the butterfly lifeguard.
 */

#ifndef BUTTERFLY_WORKLOADS_BUGS_HPP
#define BUTTERFLY_WORKLOADS_BUGS_HPP

#include "workloads/workload.hpp"

namespace bfly {

/** Kinds of bugs that can be injected. */
enum class BugKind {
    UseAfterFree,      ///< read of a block after its free
    UnallocatedAccess, ///< read of memory that was never allocated
    DoubleFree,        ///< second free of the same block
    TaintedJump,       ///< taint flows uncleaned into a Use
};

/** Where a bug was planted (for assertions). */
struct InjectedBug
{
    BugKind kind;
    ThreadId tid;
    Addr addr;
};

/**
 * Plant @p count bugs of kind @p kind into @p workload at positions drawn
 * from @p rng. Returns descriptors of what was planted. The injected
 * sequences are intra-thread (alloc...free...access on one thread), so
 * they are errors under *every* interleaving and the oracle is guaranteed
 * to flag them.
 */
std::vector<InjectedBug> injectBugs(Workload &workload, BugKind kind,
                                    std::size_t count, Rng &rng);

} // namespace bfly

#endif // BUTTERFLY_WORKLOADS_BUGS_HPP
