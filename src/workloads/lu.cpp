/**
 * @file
 * LU-like workload (Splash-2 blocked dense LU factorization).
 *
 * Structure reproduced: an NB x NB grid of matrix blocks assigned to
 * threads round-robin; iteration k factorizes the diagonal block (owner
 * writes), then after a barrier every thread updates its blocks in row/
 * column k reading the pivot block — cross-thread read-after-write with
 * barrier separation — then trailing updates. Small per-iteration pivot
 * copies add light allocation churn.
 */

#include "workloads/workload.hpp"

namespace bfly {

Workload
makeLu(const WorkloadConfig &config)
{
    const unsigned T = config.numThreads;
    ProgramBuilder b(config, 0x10000000, 48 * 1024 * 1024);

    const std::size_t nb = 8;           // blocks per matrix dimension
    const std::size_t block_bytes = 4096;
    const std::size_t touches =         // samples per block update
        std::max<std::size_t>(24, config.phaseEvents / 24);

    auto owner_of = [&](std::size_t i, std::size_t j) {
        return static_cast<ThreadId>((i * nb + j) % T);
    };

    // Blocks allocated by their owners.
    std::vector<Addr> block(nb * nb);
    b.beginSite("lu/block-alloc");
    for (std::size_t i = 0; i < nb; ++i) {
        for (std::size_t j = 0; j < nb; ++j)
            block[i * nb + j] = b.malloc(owner_of(i, j), block_bytes);
    }
    b.barrier();
    b.beginSite("lu/idle");
    for (ThreadId t = 0; t < T; ++t)
        b.nop(t, config.warmupNops);
    b.barrier();

    auto touch_block = [&](ThreadId t, Addr base, bool write_back,
                           std::size_t salt) {
        for (std::size_t k = 0; k < touches; ++k) {
            const Addr p = base + 8 * ((salt * 64 + k) % 512);
            b.read(t, p, 8);
            if (write_back)
                b.write(t, p, 8);
            b.nop(t);
        }
    };

    while (!b.budgetExhausted()) {
        for (std::size_t k = 0; k < nb && !b.budgetExhausted(); ++k) {
            const Addr pivot = block[k * nb + k];
            const ThreadId pivot_owner = owner_of(k, k);

            // Factorize the diagonal block.
            b.beginSite("lu/factorize");
            touch_block(pivot_owner, pivot, true, k);
            b.barrier();

            // Row/column updates: read the pivot, write own blocks.
            // Pivot-row copies are allocated up front and freed together
            // so first-fit address reuse stays barrier-separated.
            std::vector<std::pair<ThreadId, Addr>> scratches;
            b.beginSite("lu/scratch-alloc");
            for (std::size_t j = k + 1; j < nb; ++j) {
                const ThreadId t = owner_of(k, j);
                scratches.emplace_back(t, b.malloc(t, 256));
            }
            b.beginSite("lu/row-col-update");
            for (std::size_t j = k + 1; j < nb; ++j) {
                const ThreadId t = owner_of(k, j);
                touch_block(t, pivot, false, j);
                touch_block(t, block[k * nb + j], true, j);

                const ThreadId u = owner_of(j, k);
                touch_block(u, pivot, false, j + nb);
                touch_block(u, block[j * nb + k], true, j + nb);
            }
            b.beginSite("lu/scratch-free");
            for (const auto &[t, scratch] : scratches)
                b.free(t, scratch);
            b.barrier();

            // Trailing submatrix update (sampled).
            b.beginSite("lu/trailing-update");
            for (std::size_t i = k + 1; i < nb; ++i) {
                const std::size_t j = k + 1 + (i % (nb - k - 1 ? nb - k - 1 : 1));
                const std::size_t jj = j < nb ? j : nb - 1;
                const ThreadId t = owner_of(i, jj);
                touch_block(t, block[k * nb + jj], false, i);
                touch_block(t, block[i * nb + k], false, i + 1);
                touch_block(t, block[i * nb + jj], true, i + 2);
            }
            b.barrier();
        }
    }

    b.beginSite("lu/idle");
    for (ThreadId t = 0; t < T; ++t)
        b.nop(t, config.warmupNops);
    b.barrier();
    b.beginSite("lu/teardown");
    for (std::size_t i = 0; i < nb * nb; ++i)
        b.free(owner_of(i / nb, i % nb), block[i]);
    return b.finish("lu");
}

} // namespace bfly
