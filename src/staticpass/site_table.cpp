#include "staticpass/site_table.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace bfly::staticpass {

namespace {

const std::string kUnknownName = "?";

/** Nops carry no address; bucket them all into region 0 per thread. */
std::uint64_t
pseudoRegion(const Event &e)
{
    return e.kind == EventKind::Nop ? 0 : (e.addr >> 6);
}

/** One pseudo-site name per (thread, kind, 64-byte address region). */
std::string
pseudoSiteName(ThreadId tid, const Event &e)
{
    std::ostringstream os;
    os << "t" << tid << "/" << eventKindName(e.kind) << "/0x" << std::hex
       << pseudoRegion(e);
    return os.str();
}

/** Shared stamping state: interning is slow, regions repeat a lot. */
struct Stamper
{
    SiteTable &table;
    std::unordered_map<std::uint64_t, SiteId> cache;
    std::size_t stamped = 0;

    void
    stampThread(ThreadId tid, std::vector<Event> &events)
    {
        for (Event &e : events) {
            if (e.site != kNoSite ||
                e.kind == EventKind::SiteSummary ||
                (e.addr == kNoAddr && e.kind != EventKind::Nop))
                continue;
            const std::uint64_t key =
                (static_cast<std::uint64_t>(tid) << 48) ^
                (static_cast<std::uint64_t>(e.kind) << 40) ^
                pseudoRegion(e);
            auto it = cache.find(key);
            if (it == cache.end())
                it = cache
                         .emplace(key,
                                  table.intern(pseudoSiteName(tid, e)))
                         .first;
            e.site = it->second;
            ++stamped;
        }
    }
};

} // namespace

SiteId
SiteTable::intern(const std::string &name)
{
    auto [it, inserted] = byName_.emplace(name, 0);
    if (inserted) {
        ensure(names_.size() < 0xFFFFFFFFull, "site table overflow");
        names_.push_back(name);
        it->second = static_cast<SiteId>(names_.size());
    }
    return it->second;
}

SiteId
SiteTable::lookup(const std::string &name) const
{
    const auto it = byName_.find(name);
    return it == byName_.end() ? kNoSite : it->second;
}

const std::string &
SiteTable::name(SiteId id) const
{
    if (id == kNoSite || id > names_.size())
        return kUnknownName;
    return names_[id - 1];
}

std::size_t
assignPseudoSites(std::vector<std::vector<Event>> &programs,
                  SiteTable &table)
{
    Stamper s{table};
    for (ThreadId t = 0; t < programs.size(); ++t)
        s.stampThread(t, programs[t]);
    return s.stamped;
}

std::size_t
assignPseudoSites(Trace &trace, SiteTable &table)
{
    Stamper s{table};
    for (ThreadTrace &tt : trace.threads)
        s.stampThread(tt.tid, tt.events);
    return s.stamped;
}

} // namespace bfly::staticpass
