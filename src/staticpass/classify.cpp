#include "staticpass/classify.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hpp"

namespace bfly::staticpass {

namespace {

/** Widened-cell id (byte / widen). */
using Cell = std::uint64_t;

/** Global, flow-insensitive facts about one widened cell. */
struct CellInfo
{
    ThreadId owner = 0;
    bool seen = false;
    bool multi = false;   ///< touched by two or more threads
    bool dirty = false;   ///< touched by a non-{Read,Write,Alloc} op
    bool freed = false;   ///< covered by some Free (block extent included)
    bool tainted = false; ///< reached by the taint closure
};

/** One byte range [lo, lo+len) touched by an event. */
struct ByteRange
{
    Addr lo = 0;
    std::uint64_t len = 0;
};

/** Inclusive upper byte of a range, saturating at the address space. */
Addr
rangeHi(const ByteRange &r)
{
    const std::uint64_t len = r.len ? r.len : 1;
    return (r.lo > ~0ull - (len - 1)) ? ~0ull : r.lo + (len - 1);
}

/**
 * Enumerate the byte ranges @p e touches: the primary [addr, addr+size)
 * plus Assign sources (reads of @c size bytes each). Addressless events
 * yield nothing.
 */
template <typename Fn>
void
forEachRange(const Event &e, Fn &&fn)
{
    if (e.addr == kNoAddr || e.kind == EventKind::Heartbeat ||
        e.kind == EventKind::Barrier || e.kind == EventKind::Nop ||
        e.kind == EventKind::SiteSummary)
        return;
    fn(ByteRange{e.addr, e.size ? e.size : 1u});
    if (e.kind == EventKind::Assign) {
        if (e.nsrc >= 1 && e.src0 != kNoAddr)
            fn(ByteRange{e.src0, e.size ? e.size : 1u});
        if (e.nsrc >= 2 && e.src1 != kNoAddr)
            fn(ByteRange{e.src1, e.size ? e.size : 1u});
    }
}

/** Iterate the widened cells covering @p r. */
template <typename Fn>
void
forEachCell(const ByteRange &r, Addr widen, Fn &&fn)
{
    const Cell last = rangeHi(r) / widen;
    for (Cell c = r.lo / widen;; ++c) {
        fn(c);
        if (c >= last)
            break;
    }
}

/** Byte-exact coverage mask over 8-byte subcells. */
class ByteMask
{
  public:
    void
    set(const ByteRange &r)
    {
        apply(r, [](std::uint8_t &m, std::uint8_t bits) { m |= bits; });
    }

    void
    clear(const ByteRange &r)
    {
        apply(r, [](std::uint8_t &m, std::uint8_t bits) {
            m &= static_cast<std::uint8_t>(~bits);
        });
    }

    /** True when every byte of @p r is set. */
    bool
    covers(const ByteRange &r) const
    {
        bool ok = true;
        visit(r, [&](Cell c, std::uint8_t bits) {
            const auto it = mask_.find(c);
            if (it == mask_.end() || (it->second & bits) != bits)
                ok = false;
        });
        return ok;
    }

  private:
    template <typename Fn>
    void
    visit(const ByteRange &r, Fn &&fn) const
    {
        const Addr hi = rangeHi(r);
        for (Cell c = r.lo >> 3;; ++c) {
            const Addr cellLo = c << 3;
            std::uint8_t bits = 0;
            for (unsigned b = 0; b < 8; ++b) {
                const Addr byte = cellLo + b;
                if (byte >= r.lo && byte <= hi)
                    bits |= static_cast<std::uint8_t>(1u << b);
            }
            fn(c, bits);
            if (c >= (hi >> 3))
                break;
        }
    }

    template <typename Op>
    void
    apply(const ByteRange &r, Op &&op)
    {
        visit(r, [&](Cell c, std::uint8_t bits) {
            op(const_cast<ByteMask *>(this)->mask_[c], bits);
        });
    }

    std::unordered_map<Cell, std::uint8_t> mask_;
};

/** Per-site aggregation toward the final class. */
struct SiteFacts
{
    std::size_t events = 0;       ///< analyzed (non-marker) events
    std::size_t rwEvents = 0;     ///< Read/Write events
    std::size_t nopEvents = 0;    ///< Nops (trivially elidable)
    bool allRwCandidates = true;  ///< every R/W event passed candidacy
    bool touchesFreed = false;    ///< some cell it touches is ever freed
    bool touchesTainted = false;  ///< some cell is in the taint closure
    std::unordered_set<Cell> writeCells; ///< cells its Writes touch
    std::unordered_set<Cell> readCells;  ///< cells its Reads touch
};

struct Analysis
{
    const std::vector<const std::vector<Event> *> threads;
    const SiteTable &table;
    const Addr widen;

    std::unordered_map<Cell, CellInfo> cells;
    std::unordered_map<Addr, std::uint64_t> allocExtent; ///< base -> max size
    std::vector<SiteFacts> facts; ///< [site]; index 0 = kNoSite

    Analysis(std::vector<const std::vector<Event> *> ts,
             const SiteTable &tbl, unsigned granularity)
        : threads(std::move(ts)), table(tbl),
          widen(std::max<Addr>(8, std::bit_ceil<Addr>(granularity))),
          facts(tbl.size() + 1)
    {}

    /** The Free footprint: its own size widened to the largest block any
     *  Alloc ever placed at that base (flow-insensitive block extent). */
    ByteRange
    freeRange(const Event &e) const
    {
        std::uint64_t len = e.size ? e.size : 1;
        const auto it = allocExtent.find(e.addr);
        if (it != allocExtent.end())
            len = std::max(len, it->second);
        return {e.addr, len};
    }

    void
    globalPass()
    {
        // Block extents first: Free events dirty their whole block.
        for (const auto *program : threads)
            for (const Event &e : *program)
                if (e.kind == EventKind::Alloc && e.addr != kNoAddr) {
                    auto &ext = allocExtent[e.addr];
                    ext = std::max<std::uint64_t>(ext,
                                                  e.size ? e.size : 1);
                }

        for (ThreadId t = 0; t < threads.size(); ++t) {
            for (const Event &e : *threads[t]) {
                // Alloc/Free are benign for candidacy: on single-owner
                // cells they are same-thread, so program order (which
                // TSO preserves per thread) orders them against every
                // candidate access, and the per-thread alloc/def masks
                // below account for them exactly. They still feed the
                // freed flag for the NeverFreed class rung.
                const bool benign = e.kind == EventKind::Read ||
                                    e.kind == EventKind::Write ||
                                    e.kind == EventKind::Alloc ||
                                    e.kind == EventKind::Free;
                auto touch = [&](const ByteRange &r, bool freed) {
                    forEachCell(r, widen, [&](Cell c) {
                        CellInfo &info = cells[c];
                        if (!info.seen) {
                            info.seen = true;
                            info.owner = t;
                        } else if (info.owner != t) {
                            info.multi = true;
                        }
                        if (!benign)
                            info.dirty = true;
                        if (freed)
                            info.freed = true;
                    });
                };
                forEachRange(e, [&](const ByteRange &r) {
                    touch(r, false);
                });
                if (e.kind == EventKind::Free && e.addr != kNoAddr)
                    touch(freeRange(e), true);
            }
        }
    }

    /** Flow-insensitive taint closure: TaintSrc seeds, Assign edges. */
    void
    taintClosure()
    {
        for (const auto *program : threads)
            for (const Event &e : *program)
                if (e.kind == EventKind::TaintSrc)
                    forEachRange(e, [&](const ByteRange &r) {
                        forEachCell(r, widen, [&](Cell c) {
                            cells[c].tainted = true;
                        });
                    });

        bool changed = true;
        while (changed) {
            changed = false;
            for (const auto *program : threads) {
                for (const Event &e : *program) {
                    if (e.kind != EventKind::Assign || e.addr == kNoAddr)
                        continue;
                    bool srcTainted = false;
                    auto probe = [&](Addr a) {
                        const ByteRange r{a, e.size ? e.size : 1u};
                        forEachCell(r, widen, [&](Cell c) {
                            const auto it = cells.find(c);
                            if (it != cells.end() && it->second.tainted)
                                srcTainted = true;
                        });
                    };
                    if (e.nsrc >= 1 && e.src0 != kNoAddr)
                        probe(e.src0);
                    if (e.nsrc >= 2 && e.src1 != kNoAddr)
                        probe(e.src1);
                    if (!srcTainted)
                        continue;
                    const ByteRange dst{e.addr, e.size ? e.size : 1u};
                    forEachCell(dst, widen, [&](Cell c) {
                        CellInfo &info = cells[c];
                        if (!info.tainted) {
                            info.tainted = true;
                            changed = true;
                        }
                    });
                }
            }
        }
    }

    /** Per-thread program-order scan: alloc/def coverage + candidacy. */
    void
    orderPass(ClassifyStats &stats)
    {
        for (ThreadId t = 0; t < threads.size(); ++t) {
            ByteMask allocMask; // bytes alloc-covered by this thread
            ByteMask defMask;   // bytes written by this thread
            for (const Event &e : *threads[t]) {
                if (e.kind == EventKind::Heartbeat ||
                    e.kind == EventKind::Barrier ||
                    e.kind == EventKind::SiteSummary)
                    continue;
                ++stats.analyzedEvents;
                SiteFacts &f = facts[e.site <= table.size() ? e.site : 0];
                ++f.events;
                if (e.kind == EventKind::Nop) {
                    // Nops are invisible to every lifeguard: trivially
                    // elidable wherever the site's accesses are.
                    ++f.nopEvents;
                    continue;
                }
                forEachRange(e, [&](const ByteRange &r) {
                    forEachCell(r, widen, [&](Cell c) {
                        const CellInfo &info = cells[c];
                        if (info.freed)
                            f.touchesFreed = true;
                        if (info.tainted)
                            f.touchesTainted = true;
                    });
                });

                switch (e.kind) {
                  case EventKind::Alloc: {
                    const ByteRange r{e.addr, e.size ? e.size : 1u};
                    allocMask.set(r);
                    defMask.clear(r); // fresh memory holds garbage
                    break;
                  }
                  case EventKind::Free: {
                    const ByteRange r = freeRange(e);
                    allocMask.clear(r);
                    defMask.clear(r);
                    break;
                  }
                  case EventKind::Read:
                  case EventKind::Write: {
                    ++f.rwEvents;
                    const ByteRange r{e.addr, e.size ? e.size : 1u};
                    bool clean = e.site != kNoSite &&
                                 e.addr != kNoAddr;
                    forEachCell(r, widen, [&](Cell c) {
                        const CellInfo &info = cells[c];
                        if (!info.seen || info.multi ||
                            info.owner != t || info.dirty)
                            clean = false;
                        if (e.kind == EventKind::Write)
                            f.writeCells.insert(c);
                        else
                            f.readCells.insert(c);
                    });
                    if (clean && !allocMask.covers(r))
                        clean = false;
                    if (clean && e.kind == EventKind::Read &&
                        !defMask.covers(r))
                        clean = false;
                    if (!clean)
                        f.allRwCandidates = false;
                    if (e.kind == EventKind::Write)
                        defMask.set(r);
                    break;
                  }
                  default:
                    // TaintSrc/Untaint gen definedness in DEFINEDCHECK,
                    // but their cells are dirty, so no candidate read
                    // can ever depend on them; nothing to track.
                    break;
                }
            }
        }
    }

    /**
     * Demotion fixpoint: a site whose Writes share a cell with a
     * *retained* Read loses elision, so surviving reads never lose
     * their defining writes (DEFINEDCHECK would otherwise gain
     * spurious uninitialized-read reports — a precision, not
     * soundness, concern; see DESIGN.md).
     */
    std::vector<bool>
    demotionFixpoint(ClassifyStats &stats)
    {
        std::vector<bool> elidable(facts.size(), false);
        for (std::size_t id = 1; id < facts.size(); ++id)
            elidable[id] = facts[id].rwEvents + facts[id].nopEvents > 0 &&
                           facts[id].allRwCandidates;

        bool changed = true;
        while (changed) {
            ++stats.fixpointRounds;
            changed = false;
            std::unordered_set<Cell> retainedReads(
                facts[0].readCells.begin(), facts[0].readCells.end());
            for (std::size_t id = 1; id < facts.size(); ++id)
                if (!elidable[id])
                    retainedReads.insert(facts[id].readCells.begin(),
                                         facts[id].readCells.end());
            for (std::size_t id = 1; id < facts.size(); ++id) {
                if (!elidable[id])
                    continue;
                for (Cell c : facts[id].writeCells) {
                    if (retainedReads.count(c)) {
                        elidable[id] = false;
                        changed = true;
                        break;
                    }
                }
            }
        }
        return elidable;
    }
};

ElisionPlan
classifyImpl(std::vector<const std::vector<Event> *> threads,
             const SiteTable &table, const ClassifyOptions &options,
             ClassifyStats *stats_out)
{
    ClassifyStats stats;
    stats.sites = table.size();

    Analysis a(std::move(threads), table, options.granularity);
    a.globalPass();
    a.taintClosure();
    a.orderPass(stats);
    const std::vector<bool> elidable = a.demotionFixpoint(stats);

    ElisionPlan plan;
    plan.classes.assign(table.size() + 1, SiteClass::MustMonitor);
    for (std::size_t id = 1; id < plan.classes.size(); ++id) {
        const SiteFacts &f = a.facts[id];
        SiteClass c = SiteClass::MustMonitor;
        if (elidable[id])
            c = SiteClass::AlwaysPrivate;
        else if (f.events > 0 && !f.touchesFreed)
            c = f.touchesTainted ? SiteClass::NeverFreed
                                 : SiteClass::ProvablyUntainted;
        plan.classes[id] = c;
        ++stats.byClass[static_cast<unsigned>(c)];
        if (c == SiteClass::AlwaysPrivate)
            stats.candidateEvents += f.rwEvents + f.nopEvents;
    }
    if (stats_out)
        *stats_out = stats;
    return plan;
}

} // namespace

ElisionPlan
classifySites(const std::vector<std::vector<Event>> &programs,
              const SiteTable &table, const ClassifyOptions &options,
              ClassifyStats *stats)
{
    std::vector<const std::vector<Event> *> threads;
    threads.reserve(programs.size());
    for (const auto &p : programs)
        threads.push_back(&p);
    return classifyImpl(std::move(threads), table, options, stats);
}

ElisionPlan
classifySites(const Trace &trace, const SiteTable &table,
              const ClassifyOptions &options, ClassifyStats *stats)
{
    // Thread index must equal the tid the interleaver used, or the
    // ownership facts would mix threads.
    std::size_t maxTid = 0;
    for (const ThreadTrace &tt : trace.threads)
        maxTid = std::max<std::size_t>(maxTid, tt.tid);
    static const std::vector<Event> kEmpty;
    std::vector<const std::vector<Event> *> threads(maxTid + 1, &kEmpty);
    for (const ThreadTrace &tt : trace.threads)
        threads[tt.tid] = &tt.events;
    return classifyImpl(std::move(threads), table, options, stats);
}

ElisionPlan
buildElisionPlan(Trace &trace, SiteTable &table,
                 const ClassifyOptions &options, ClassifyStats *stats)
{
    assignPseudoSites(trace, table);
    return classifySites(trace, table, options, stats);
}

} // namespace bfly::staticpass
