/**
 * @file
 * Site table: stable identities for event-emitting sites.
 *
 * The static elision pass classifies *sites*, not individual dynamic
 * events: a site is one emitting location in the synthetic workload
 * kernels (they are this repo's IR — codegen is controlled in
 * src/workloads/), named by the generator via ProgramBuilder::beginSite
 * and stamped into every event it emits. Traces that arrive without
 * generation-side stamps (the fuzzer's adversarial programs, loaded
 * logs) get deterministic *pseudo-sites* keyed by (thread, event kind,
 * 64-byte address region) — a pure function of event content, so the
 * same trace always yields the same site table and therefore the same
 * ElisionPlan fingerprint on both ends of the wire.
 *
 * SiteId 0 (kNoSite) means "unattributed" and is never classified
 * better than MustMonitor, so unstamped events are never elided.
 */

#ifndef BUTTERFLY_STATICPASS_SITE_TABLE_HPP
#define BUTTERFLY_STATICPASS_SITE_TABLE_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"

namespace bfly::staticpass {

using SiteId = std::uint32_t;

/** Reserved id for events with no emitting-site attribution. */
inline constexpr SiteId kNoSite = 0;

/** Interns site names; ids are dense, stable and start at 1. */
class SiteTable
{
  public:
    /** Id for @p name, interning it on first use. */
    SiteId intern(const std::string &name);

    /** Id for @p name, or kNoSite if it was never interned. */
    SiteId lookup(const std::string &name) const;

    /** Name of @p id ("?" for kNoSite or out-of-range ids). */
    const std::string &name(SiteId id) const;

    /** Number of interned sites; valid ids are 1..size(). */
    std::size_t size() const { return names_.size(); }

  private:
    std::vector<std::string> names_; ///< names_[id - 1]
    std::unordered_map<std::string, SiteId> byName_;
};

/**
 * Stamp a deterministic pseudo-site onto every unattributed
 * (site == kNoSite) event that touches memory, interning the site names
 * into @p table. Nops are also stamped (one per-thread site keyed on
 * region 0): they are invisible to every lifeguard, so their pseudo-
 * site is trivially elidable. Other addressless events (heartbeats,
 * barriers) stay unattributed and are conservatively retained.
 * @return events stamped
 */
std::size_t assignPseudoSites(std::vector<std::vector<Event>> &programs,
                              SiteTable &table);
std::size_t assignPseudoSites(Trace &trace, SiteTable &table);

} // namespace bfly::staticpass

#endif // BUTTERFLY_STATICPASS_SITE_TABLE_HPP
