#include "staticpass/elision_plan.hpp"

#include <algorithm>

namespace bfly::staticpass {

const char *
siteClassName(SiteClass c)
{
    switch (c) {
      case SiteClass::MustMonitor:       return "must-monitor";
      case SiteClass::NeverFreed:        return "never-freed";
      case SiteClass::ProvablyUntainted: return "provably-untainted";
      case SiteClass::AlwaysPrivate:     return "always-private";
    }
    return "?";
}

std::uint64_t
ElisionPlan::fingerprint() const
{
    if (classes.size() <= 1)
        return 0;
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    mix(0xe115'0000 + classes.size()); // format tag + site count
    for (std::size_t id = 1; id < classes.size(); ++id)
        mix(static_cast<std::uint64_t>(classes[id]));
    return h;
}

namespace {

/** Accumulates one maximal run of consecutive elided events. */
struct Run
{
    /** (site, count) pairs in first-seen order; runs rarely span more
     *  than a handful of distinct sites, so linear scan beats a map. */
    std::vector<std::pair<SiteId, std::uint64_t>> counts;
    std::uint64_t maxGseq = 0;

    void
    add(const Event &e)
    {
        maxGseq = std::max(maxGseq, e.gseq);
        for (auto &[site, count] : counts) {
            if (site == e.site) {
                ++count;
                return;
            }
        }
        counts.emplace_back(e.site, 1);
    }

    void
    flush(std::vector<Event> &out, ElisionStats &stats)
    {
        for (const auto &[site, count] : counts) {
            Event s = Event::siteSummary(site, count);
            s.gseq = maxGseq;
            out.push_back(s);
            ++stats.summaryEvents;
        }
        counts.clear();
        maxGseq = 0;
    }
};

} // namespace

std::vector<Event>
applyElisionPlan(const std::vector<Event> &events, const ElisionPlan &plan,
                 ElisionStats *stats)
{
    ElisionStats local;
    ElisionStats &st = stats ? *stats : local;

    std::vector<Event> out;
    out.reserve(events.size());
    Run run;
    for (const Event &e : events) {
        if (e.kind != EventKind::Heartbeat)
            ++st.inputEvents;
        const bool elide =
            (e.kind == EventKind::Read || e.kind == EventKind::Write ||
             e.kind == EventKind::Nop) &&
            plan.elides(e.site);
        if (elide) {
            ++st.elidedEvents;
            run.add(e);
            continue;
        }
        // Retained events (and epoch markers) end the run: summaries
        // must precede whatever comes next so they stay in their epoch.
        run.flush(out, st);
        out.push_back(e);
        if (e.kind != EventKind::Heartbeat)
            ++st.retainedEvents;
    }
    run.flush(out, st);
    return out;
}

Trace
applyElisionPlan(const Trace &trace, const ElisionPlan &plan,
                 ElisionStats *stats)
{
    Trace out;
    out.threads.resize(trace.threads.size());
    for (std::size_t t = 0; t < trace.threads.size(); ++t) {
        out.threads[t].tid = trace.threads[t].tid;
        out.threads[t].events =
            applyElisionPlan(trace.threads[t].events, plan, stats);
    }
    return out;
}

} // namespace bfly::staticpass
