/**
 * @file
 * ElisionPlan: the artifact the static classification pass hands to log
 * generation, plus its application to event streams.
 *
 * A plan maps every SiteId to a SiteClass. Only AlwaysPrivate sites are
 * elided: their Read/Write/Nop events are dropped from the log and each
 * maximal run of consecutive elided events is replaced by one
 * SiteSummary event per distinct site in the run, carrying the exact
 * count of events it stands for — so event accounting stays exact
 * (sum of summary counts == events elided) while the wire carries a
 * fraction of the bytes.
 *
 * Runs are flushed at every retained event, heartbeat and barrier, so a
 * summary always lands in the same epoch as the events it replaces, and
 * its gseq is the largest gseq of the covered run, so
 * EpochLayout::byGlobalSeq buckets it with the run's tail.
 *
 * The plan fingerprint is a stable FNV-1a hash of the classification
 * vector; client and server exchange it (wire v4) so both ends can
 * assert they agree on what was elided.
 */

#ifndef BUTTERFLY_STATICPASS_ELISION_PLAN_HPP
#define BUTTERFLY_STATICPASS_ELISION_PLAN_HPP

#include <cstdint>
#include <vector>

#include "staticpass/site_table.hpp"

namespace bfly::staticpass {

/**
 * Classification lattice, ascending: MustMonitor is the conservative
 * bottom (any doubt lands here), AlwaysPrivate the only class strong
 * enough to elide. The middle rungs are provable facts short of full
 * privacy — they bound what a *site's* events can ever do, and are
 * reported (monitor_cli --elide, bfly_serve) even though v1 elides only
 * the top class.
 */
enum class SiteClass : std::uint8_t {
    MustMonitor = 0,       ///< no provable fact; monitor every event
    NeverFreed = 1,        ///< no byte the site touches is ever freed
    ProvablyUntainted = 2, ///< NeverFreed + untouched by the taint closure
    AlwaysPrivate = 3,     ///< single-thread, alloc- and def-covered:
                           ///< provably invisible to every lifeguard
};

const char *siteClassName(SiteClass c);

/** Per-site classification artifact consulted at log-generation time. */
struct ElisionPlan
{
    /** classes[id] for 1 <= id <= siteCount; index 0 is kNoSite and is
     *  always MustMonitor. */
    std::vector<SiteClass> classes;

    SiteClass
    classOf(SiteId id) const
    {
        return id < classes.size() ? classes[id] : SiteClass::MustMonitor;
    }

    /** Only the top of the lattice is elided. */
    bool
    elides(SiteId id) const
    {
        return classOf(id) == SiteClass::AlwaysPrivate;
    }

    std::size_t
    countOf(SiteClass c) const
    {
        std::size_t n = 0;
        for (std::size_t id = 1; id < classes.size(); ++id)
            if (classes[id] == c)
                ++n;
        return n;
    }

    /** Stable FNV-1a hash of the classification (0 = empty plan). */
    std::uint64_t fingerprint() const;
};

/** Exact accounting of one plan application. */
struct ElisionStats
{
    std::uint64_t inputEvents = 0;   ///< non-heartbeat events seen
    std::uint64_t retainedEvents = 0; ///< non-heartbeat events kept as-is
    std::uint64_t elidedEvents = 0;  ///< events replaced by summaries
    std::uint64_t summaryEvents = 0; ///< SiteSummary events emitted

    double
    elidedFraction() const
    {
        return inputEvents
                   ? static_cast<double>(elidedEvents) / inputEvents
                   : 0.0;
    }
};

/**
 * Apply @p plan to one thread's event stream (program order, heartbeats
 * allowed). Elided runs become SiteSummary events; everything else is
 * copied verbatim. @p stats accumulates across calls when non-null.
 */
std::vector<Event> applyElisionPlan(const std::vector<Event> &events,
                                    const ElisionPlan &plan,
                                    ElisionStats *stats = nullptr);

/** Apply @p plan to every thread of @p trace. */
Trace applyElisionPlan(const Trace &trace, const ElisionPlan &plan,
                       ElisionStats *stats = nullptr);

} // namespace bfly::staticpass

#endif // BUTTERFLY_STATICPASS_ELISION_PLAN_HPP
