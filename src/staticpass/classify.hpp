/**
 * @file
 * Flow-insensitive region/pointer classification of emitting sites.
 *
 * The analysis sees the per-thread event programs (program order — for
 * workloads these are the generated kernels themselves; for traces the
 * per-thread streams, which preserve program order) and computes, per
 * site, the strongest SiteClass it can prove. Everything is widened to
 * fixed cells of max(8, granularity) bytes — the coarsest metadata key
 * any lifeguard uses — so a fact about a cell is a fact about every
 * lifeguard's key covering it.
 *
 * A Read/Write event is an *elision candidate* when every cell it
 * touches is clean (touched by exactly one thread, and only by
 * Read/Write/Alloc/Free events — no taint ops, assigns, uses, outputs
 * or lock ops anywhere in the program; allocs and frees on
 * single-owner cells are same-thread and therefore ordered by program
 * order, which the per-thread masks below account for exactly), its
 * bytes are covered by a same-thread Alloc with no intervening Free
 * (so ADDRCHECK can never flag it; the TSO interleaver drains
 * overlapping buffered stores before a dependent access executes, so
 * program-order coverage implies visibility-order coverage), and —
 * for Reads — its bytes are covered by earlier same-thread Writes
 * with no intervening Alloc/Free (which kill definedness: fresh
 * memory holds garbage), so DEFINEDCHECK can never flag it either.
 * Nops are invisible to every lifeguard and trivially candidates. A
 * site is AlwaysPrivate when all of its Read/Write events are
 * candidates (its allocs and frees are retained either way), minus a
 * demotion fixpoint that keeps any Write whose
 * cell is also read by a *retained* event: eliding such a write would
 * turn the surviving read into a spurious uninitialized-read report.
 * After the fixpoint, elided and retained events never disagree about a
 * cell's fate in a way any lifeguard can observe — see DESIGN.md
 * "Static elision" for the per-lifeguard soundness argument.
 *
 * Everything here is conservative on any doubt: unattributed events,
 * out-of-range sizes, unknown kinds and aliasing all land in
 * MustMonitor.
 */

#ifndef BUTTERFLY_STATICPASS_CLASSIFY_HPP
#define BUTTERFLY_STATICPASS_CLASSIFY_HPP

#include <cstddef>

#include "staticpass/elision_plan.hpp"
#include "staticpass/site_table.hpp"

namespace bfly::staticpass {

/** Analysis knobs. */
struct ClassifyOptions
{
    /** Largest metadata granularity any consuming lifeguard uses; cells
     *  are widened to at least 8 bytes (the repo-wide default key). */
    unsigned granularity = 8;
};

/** What the classifier proved (reporting; the plan holds the verdicts). */
struct ClassifyStats
{
    std::size_t sites = 0;
    std::size_t byClass[4] = {0, 0, 0, 0}; ///< indexed by SiteClass
    std::size_t candidateEvents = 0; ///< events at AlwaysPrivate sites
    std::size_t analyzedEvents = 0;  ///< non-marker events examined
    std::size_t fixpointRounds = 0;  ///< demotion iterations to converge
};

/**
 * Classify every site of @p table over @p programs (per-thread event
 * vectors in program order; thread index = ThreadId).
 */
ElisionPlan classifySites(const std::vector<std::vector<Event>> &programs,
                          const SiteTable &table,
                          const ClassifyOptions &options = {},
                          ClassifyStats *stats = nullptr);

/** Trace overload: per-thread streams preserve program order. */
ElisionPlan classifySites(const Trace &trace, const SiteTable &table,
                          const ClassifyOptions &options = {},
                          ClassifyStats *stats = nullptr);

/**
 * Convenience for unattributed traces (fuzz cases, loaded logs): stamp
 * pseudo-sites in place, classify, and return the plan. Deterministic
 * in the trace content, so both ends of a connection derive the same
 * plan and fingerprint.
 */
ElisionPlan buildElisionPlan(Trace &trace, SiteTable &table,
                             const ClassifyOptions &options = {},
                             ClassifyStats *stats = nullptr);

} // namespace bfly::staticpass

#endif // BUTTERFLY_STATICPASS_CLASSIFY_HPP
