/**
 * @file
 * TAINTCHECK: the taint-propagation lifeguard (paper Section 6.2).
 *
 * The butterfly adaptation of reaching definitions with *inheritance*:
 * metadata are SSA-like transfer functions (x_{l,t,i} <- s) where s is
 * taint (bottom), untaint (top), or a set of parent locations the value
 * was computed from. Resolution of a check is a depth-first search over
 * the transfer functions visible in the butterfly (Algorithm 1):
 *
 *  - own-thread state resolves sequentially (local writes, then the head's
 *    resolved LASTCHECK results, then the SOS of tainted addresses);
 *  - wing transfer functions are explored conservatively: if *any*
 *    interleaving permitted by the termination condition taints a parent,
 *    the destination is considered tainted;
 *  - two termination variants: sequential consistency (per-thread position
 *    counters force each thread's contribution to descend in program
 *    order, and body-local taints may only flow into reads at later
 *    offsets) and relaxed (only parent repetition is disallowed);
 *  - checks resolve in two phases (Lemma 6.3): phase one may use wing
 *    transfer functions from epochs l-1 and l, phase two from l and l+1.
 *    Phase-one taint conclusions persist into phase two as *roots*,
 *    computed as a min-cost fixpoint over the phase-one window: each
 *    root records the smallest body offset its taint derivation depends
 *    on (-1 when independent of the body), so phase two can honour the
 *    body's program order under the SC termination condition.
 *
 * The SOS tracks addresses believed tainted, advanced with the reaching-
 * definitions update rule via LASTCHECK (the resolved status of the last
 * write to each address in a block).
 */

#ifndef BUTTERFLY_LIFEGUARDS_TAINTCHECK_HPP
#define BUTTERFLY_LIFEGUARDS_TAINTCHECK_HPP

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/addr_set.hpp"
#include "butterfly/ids.hpp"
#include "butterfly/window.hpp"
#include "lifeguards/report.hpp"
#include "lifeguards/taintcheck_oracle.hpp"

namespace bfly {

/** Check-algorithm termination condition (Section 6.2). */
enum class TaintTermination {
    SequentialConsistency, ///< per-thread counters, program-order descent
    Relaxed,               ///< no parent revisited on a path
};

/** Butterfly-analysis TAINTCHECK. Drive with WindowSchedule. */
class ButterflyTaintCheck : public AnalysisDriver
{
  public:
    /** Streaming-friendly: the driver only needs the thread count, so it
     *  can run over an EpochStream without materializing a layout. */
    ButterflyTaintCheck(std::size_t num_threads,
                        const TaintCheckConfig &config,
                        TaintTermination termination =
                            TaintTermination::SequentialConsistency);
    ButterflyTaintCheck(const EpochLayout &layout,
                        const TaintCheckConfig &config,
                        TaintTermination termination =
                            TaintTermination::SequentialConsistency)
        : ButterflyTaintCheck(layout.numThreads(), config, termination)
    {}

    // AnalysisDriver hooks.
    void pass1(const BlockView &block) override;
    void pass2(const BlockView &block) override;
    void finalizeEpoch(EpochId l) override;

    /**
     * Batched pass 1: transpose the block to columnar form, build the
     * rule vector in one linear sweep over the columns, and construct
     * rulesByKey by sorting (dst, index) pairs and bulk-inserting each
     * key's run — one map insert per distinct destination instead of
     * one hash probe per rule. Per-key index order stays ascending
     * (pass 2's resolution budget makes traversal order observable),
     * so results are bit-identical to the scalar build.
     */
    void setBatchMode(bool enabled) override { batched_ = enabled; }

    const ErrorLog &errors() const { return errors_; }

    /** Addresses (keys) currently believed tainted (the SOS). */
    const AddrSet &sosNow() const { return sosCur_; }

    /** Number of Check resolutions performed (cost-model feed). */
    std::uint64_t checksResolved() const { return checksResolved_; }

  private:
    static constexpr std::size_t kWindow = 4;
    static constexpr unsigned kMaxDepth = 128;
    /**
     * Work budget for one Check resolution. kMaxDepth bounds the DFS
     * depth but not its branching: a dense web of Assign copy rules can
     * make the SC inheritance-chain search exponential in the chain
     * length (each wing rule re-explores its parents under a fresh
     * counter ceiling). Past the budget the check gives up the same way
     * the depth cutoff does — assume tainted rather than miss. The
     * traversal order is deterministic, so all schedule modes cut off
     * at the identical point and report-level equivalence is preserved.
     */
    static constexpr std::uint64_t kMaxResolvedPerCheck = 1u << 16;
    /** Root cost meaning "independent of the body block". */
    static constexpr std::int64_t kNoLocal = -1;

    /** Right-hand side of a transfer function. */
    enum class Rhs : std::uint8_t { Taint, Untaint, Copy };

    /** One transfer function (x_{l,t,i} <- s). */
    struct Rule
    {
        InstrOffset i = 0;
        Addr dst = 0;        ///< destination key
        Rhs rhs = Rhs::Copy;
        std::array<Addr, 2> srcs{};
        std::uint8_t nsrc = 0;
    };

    /** Per-block state: pass-1 rules, pass-2 resolved LASTCHECK. */
    struct BlockState
    {
        std::vector<Rule> rules;
        /** dst key -> indices into rules, ascending program order. */
        std::unordered_map<Addr, std::vector<std::size_t>> rulesByKey;
        /** Resolved status of the last write per key (true = tainted). */
        std::unordered_map<Addr, bool> lastCheck;
        /** Keys whose resolved status was tainted at *some* point in
         *  the block — what a concurrent (wing) reader could observe
         *  even if a later write in this block untainted them. */
        AddrSet everTainted;
        EpochId epoch = kNoEpoch;
    };

    BlockState &slot(EpochId l, ThreadId t);
    const BlockState *slotIfValid(EpochId l, ThreadId t) const;

    /** Own-thread base taint status at body entry (LSOS semantics). */
    bool lsosTainted(Addr key, EpochId l, ThreadId t) const;

    /**
     * Taint status as visible to a *wing* reader. The body's own head
     * may have untainted the key, but a concurrent wing instruction can
     * read the pre-head value (the head and the wings are unordered),
     * so a head untaint must not mask an older taint here.
     */
    bool wingVisibleTainted(Addr key, EpochId l, ThreadId t) const;

    /** DFS state for one Check resolution. */
    struct CheckCtx
    {
        EpochId bodyEpoch = 0;
        ThreadId bodyThread = 0;
        EpochId wingLo = 0; ///< phase window: lowest wing epoch usable
        EpochId wingHi = 0; ///< highest wing epoch usable
        /** Offset of the body instruction being resolved; body-local
         *  taints and roots at offsets >= this are unusable under SC. */
        InstrOffset checkOffset = 0;
        /** Latest value per locally-written key (program order). */
        const std::unordered_map<Addr, bool> *localState = nullptr;
        /** Earliest offset at which each key became tainted locally. */
        const std::unordered_map<Addr, InstrOffset> *localTaintOffset =
            nullptr;
        /** Phase-one taint roots: key -> min body offset required. */
        const std::unordered_map<Addr, std::int64_t> *phaseOneRoots =
            nullptr;
        /** SC termination: per-thread position ceilings. */
        std::vector<std::optional<InstrId>> counters;
        /** Relaxed termination: keys on the current path. */
        std::vector<Addr> path;
        unsigned depth = 0;
        /** Resolutions performed through this context (committed to the
         *  shared counter at end of pass 2, under the mutex). */
        std::uint64_t resolved = 0;
        /** ctx.resolved at the start of the current check (budget base). */
        std::uint64_t budgetMark = 0;
    };

    /** Could @p key be tainted under some permitted interleaving? */
    bool resolveKey(Addr key, CheckCtx &ctx);

    /** Explore wing transfer functions writing @p key. */
    bool wingsTaint(Addr key, CheckCtx &ctx);

    /**
     * Min-cost taint fixpoint over the phase-one window: for every key
     * written by a wing rule or tainted by the body, the smallest body
     * offset its taint depends on (kNoLocal if none). Ignores the SC
     * counters, so it over-approximates taint — sound for roots.
     */
    std::unordered_map<Addr, std::int64_t>
    phaseOneFixpoint(EpochId l, ThreadId t, EpochId wing_lo,
                     EpochId wing_hi,
                     const std::unordered_map<Addr, InstrOffset>
                         &local_taint_offset) const;

    /** The batched (columnar, sort-grouped) pass-1 kernel. */
    void pass1Batched(const BlockView &block);

    TaintCheckConfig config_;
    TaintTermination termination_;
    bool batched_ = false; ///< batched pass-1 kernel selected

    std::vector<std::array<BlockState, kWindow>> blocks_; ///< [t]

    AddrSet sosPrev_; ///< SOS_l   while pass 2 of epoch l runs
    AddrSet sosCur_;  ///< SOS_{l+1} (already advanced by finalize(l-1))

    /** Guards errors_ and checksResolved_: pass-2 blocks run in parallel
     *  and buffer their reports locally, committing once per block. */
    std::mutex mutex_;
    ErrorLog errors_;
    std::uint64_t checksResolved_ = 0;
};

} // namespace bfly

#endif // BUTTERFLY_LIFEGUARDS_TAINTCHECK_HPP
