/**
 * @file
 * LOCKSET: an Eraser-style data-race lifeguard adapted to butterfly
 * analysis — the first analysis in this repo that is *not* one of the
 * paper's own two, demonstrating the framework's generality claim.
 *
 * The classic algorithm maintains, per shared variable v, a candidate
 * set C(v) of locks that protected *every* access so far; C(v) running
 * empty while writes are involved flags a potential data race. Two
 * properties make it butterfly-friendly:
 *
 *  - lock state is thread-local: the set of locks a thread holds at an
 *    access depends only on that thread's own program order, which the
 *    per-thread event streams preserve exactly. Pass 1 summarizes each
 *    block's lock effect as a transfer function over the (unknown)
 *    epoch-entry lock mask, and finalizeEpoch chains entry states
 *    per-thread — so the butterfly computes the *exact* per-access
 *    lockset, independent of interleaving;
 *
 *  - candidate-set intersection is commutative and associative, so the
 *    cross-thread meet does not need the true interleaving. The only
 *    order-sensitive part of Eraser is the initialization (exclusive-
 *    phase) exemption, and there the butterfly is conservative: an
 *    access by thread t in epoch e stays exempt only while *no other
 *    thread* has touched the variable in any epoch <= e+1. Events two
 *    or more epochs later are provably after the access, so every
 *    access the sequential oracle intersects is also intersected here
 *    (zero false negatives); accesses that merely *might* be concurrent
 *    are intersected too (the H-dependent false positives, which shrink
 *    monotonically as epochs shrink because nested boundaries only
 *    remove would-be-concurrent pairs).
 *
 * Pass 2 of block (l, t) meets the wings: it resolves the block's
 * per-variable contribution against the entry lock state (published by
 * finalizeEpoch(l-1)) and classifies it exempt/shared using the
 * cumulative first/second-accessor state plus the epoch-(l+1) pass-1
 * summaries. finalizeEpoch(l) then folds the resolved contributions
 * into the per-variable candidate sets in canonical thread order and
 * emits DataRace reports deterministically — identical across every
 * scheduling mode by construction.
 *
 * Variables are tracked at one metadata key per access (keyOf(addr),
 * Eraser's fixed-granularity shadow word); reports use the canonical
 * granule address so records are 1:1 with racy variables. Locks map to
 * bits of a 64-bit mask via lockBit(); the oracle uses the identical
 * mapping, so aliasing (>64 distinct locks) degrades both sides the
 * same way and never produces a false negative relative to the oracle.
 *
 * This driver is *strict* (finalizeAfterPass2() == true): pass 2 reads
 * the entry lock states and cumulative accessor state that finalize
 * advances, and finalize(l) reads epoch-(l+1) pass-1 summaries — both
 * orderings the strict pipelined schedule guarantees.
 */

#ifndef BUTTERFLY_LIFEGUARDS_LOCKSET_HPP
#define BUTTERFLY_LIFEGUARDS_LOCKSET_HPP

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "butterfly/window.hpp"
#include "lifeguards/report.hpp"
#include "trace/trace.hpp"

namespace bfly {

/** Configuration shared by the butterfly lifeguard and the oracle. */
struct LockSetConfig
{
    /** Shadow-word granularity: each access charges one variable key. */
    unsigned granularity = 8;
    /** Monitored data window; accesses outside are ignored. Lock
     *  identities are independent of this window. */
    Addr heapBase = 0;
    Addr heapLimit = kNoAddr;

    Addr keyOf(Addr addr) const { return addr / granularity; }

    bool
    monitored(Addr addr) const
    {
        return addr >= heapBase && addr < heapLimit;
    }

    /** Lock address -> bit in the 64-bit lock mask (shared with the
     *  oracle so aliasing is symmetric). */
    static std::uint64_t
    lockBit(Addr lock)
    {
        return 1ull << (lock % 64);
    }
};

/** Butterfly-analysis LOCKSET. Drive with WindowSchedule. */
class ButterflyLockSet : public AnalysisDriver
{
  public:
    /** Streaming-friendly: the driver only needs the thread count, so it
     *  can run over an EpochStream without materializing a layout. */
    ButterflyLockSet(std::size_t num_threads, const LockSetConfig &config);
    ButterflyLockSet(const EpochLayout &layout, const LockSetConfig &config)
        : ButterflyLockSet(layout.numThreads(), config)
    {}

    // AnalysisDriver hooks.
    void pass1(const BlockView &block) override;
    void pass2(const BlockView &block) override;
    void finalizeEpoch(EpochId l) override;

    const ErrorLog &errors() const { return errors_; }

    /** Variables still in shared state with a live candidate set. */
    std::size_t trackedVariables() const { return keyState_.size(); }

    /** Accesses classified (cost-model feed). */
    std::uint64_t accessesClassified() const { return accesses_; }

  private:
    static constexpr std::size_t kWindow = 4; ///< ring depth (epochs)

    /**
     * Pass-1 per-variable fold of one block's accesses, as a per-bit
     * function of the epoch-entry lock mask E: the block's contribution
     * to the candidate intersection is (one | (E & pass)) — bit forced 1
     * when every access held the lock, inherited from E when no access
     * pinned it, 0 otherwise.
     */
    struct KeyAccess
    {
        std::uint64_t one = ~0ull;  ///< bits held at every access
        std::uint64_t pass = 0;     ///< bits inherited from entry state
        bool wrote = false;         ///< some access was a write
        InstrOffset first = 0;      ///< first access offset (attribution)
    };

    /** Contribution resolved by pass 2 against the entry lock state. */
    struct Resolved
    {
        Addr key = 0;
        std::uint64_t lockset = 0; ///< exact locks held across accesses
        std::uint64_t index = 0;   ///< global index of the first access
        bool wrote = false;
        bool exempt = false;       ///< still in the exclusive phase
    };

    /** Per-block state: pass-1 summary + pass-2 resolution. */
    struct BlockSummary
    {
        std::unordered_map<Addr, KeyAccess> keys;
        std::uint64_t setMask = 0;   ///< lock bits forced 1 at block exit
        std::uint64_t clearMask = 0; ///< lock bits forced 0 at block exit
        std::vector<Resolved> resolved; ///< pass 2, sorted by key
        EpochId epoch = kNoEpoch;       ///< pass-1 validity tag
    };

    /** Cross-epoch per-variable race state (finalize-owned; the seen_*
     *  fields are read by pass 2 between finalize quiescent points). */
    struct KeyState
    {
        ThreadId firstThread = 0;
        bool seen = false;          ///< some thread has accessed
        bool multi = false;         ///< >= 2 distinct threads accessed
        std::uint64_t candidate = ~0ull;
        bool shared = false;        ///< some contribution was folded
        bool sharedWrite = false;
        bool reported = false;
    };

    BlockSummary &slot(EpochId l, ThreadId t);
    const BlockSummary *slotIfValid(EpochId l, ThreadId t) const;

    /** Was the variable touched by a thread other than @p t in any epoch
     *  <= l+1? (Cumulative state covers epochs < nextAbsorb_; the ring
     *  covers the rest of the window.) */
    bool otherThreadSeen(Addr key, ThreadId t, EpochId l) const;

    LockSetConfig config_;

    std::vector<std::array<BlockSummary, kWindow>> summaries_; ///< [t]

    /** E_{l,t}: lock mask at entry of the epoch currently in pass 2;
     *  advanced by finalizeEpoch (single-writer). */
    std::vector<std::uint64_t> entry_;

    std::unordered_map<Addr, KeyState> keyState_; ///< finalize-owned
    EpochId nextAbsorb_ = 0; ///< next epoch to fold into accessor state

    /** Guards accesses_ (committed from parallel pass-1 blocks); errors_
     *  is only written in finalizeEpoch, which the strict schedule makes
     *  a globally quiescent point. */
    std::mutex mutex_;
    ErrorLog errors_;
    std::uint64_t accesses_ = 0;
};

/** Exact sequential Eraser over the true (gseq) interleaving. */
class LockSetOracle
{
  public:
    explicit LockSetOracle(const LockSetConfig &config);

    void runOnTrace(const Trace &trace);
    void processOne(ThreadId tid, std::uint64_t index, const Event &e);

    const ErrorLog &errors() const { return errors_; }

  private:
    struct VarState
    {
        ThreadId firstThread = 0;
        bool seen = false;
        bool shared = false;        ///< second thread has arrived
        std::uint64_t candidate = ~0ull;
        bool sharedWrite = false;
        bool reported = false;
    };

    LockSetConfig config_;
    std::unordered_map<ThreadId, std::uint64_t> held_;
    std::unordered_map<Addr, VarState> vars_;
    ErrorLog errors_;
};

} // namespace bfly

#endif // BUTTERFLY_LIFEGUARDS_LOCKSET_HPP
