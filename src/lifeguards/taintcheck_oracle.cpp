#include "lifeguards/taintcheck_oracle.hpp"

#include <algorithm>
#include <vector>

namespace bfly {

TaintCheckOracle::TaintCheckOracle(const TaintCheckConfig &config)
    : config_(config)
{}

bool
TaintCheckOracle::tainted(Addr addr) const
{
    return taint_.get(config_.keyOf(addr)) != 0;
}

void
TaintCheckOracle::processOne(ThreadId tid, std::uint64_t index,
                             const Event &e)
{
    auto set_range = [&](Addr base, std::uint16_t size, std::uint8_t v) {
        if (base == kNoAddr)
            return;
        const Addr first = config_.keyOf(base);
        const Addr last =
            config_.keyOf(base + (size > 0 ? size - 1 : 0));
        for (Addr k = first; k <= last; ++k)
            taint_.set(k, v);
    };

    switch (e.kind) {
      case EventKind::TaintSrc:
        set_range(e.addr, e.size, 1);
        break;
      case EventKind::Untaint:
      case EventKind::Write:
        set_range(e.addr, e.size, 0);
        break;
      case EventKind::Assign: {
        bool src_tainted = false;
        const Addr srcs[2] = {e.src0, e.src1};
        for (unsigned n = 0; n < e.nsrc; ++n)
            src_tainted |= taint_.get(config_.keyOf(srcs[n])) != 0;
        set_range(e.addr, e.size, src_tainted ? 1 : 0);
        break;
      }
      case EventKind::Use:
        if (tainted(e.addr))
            errors_.report(tid, index, e.addr, ErrorKind::TaintedUse);
        break;
      default:
        break;
    }
}

void
TaintCheckOracle::runOnTrace(const Trace &trace)
{
    struct IndexedEvent
    {
        std::uint64_t gseq;
        ThreadId tid;
        std::uint64_t index;
        const Event *e;
    };
    std::vector<IndexedEvent> merged;
    merged.reserve(trace.instructionCount());
    for (const ThreadTrace &tt : trace.threads) {
        std::uint64_t index = 0;
        for (const Event &e : tt.events) {
            if (e.kind == EventKind::Heartbeat)
                continue;
            merged.push_back(IndexedEvent{e.gseq, tt.tid, index, &e});
            ++index;
        }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const IndexedEvent &a, const IndexedEvent &b) {
                         return a.gseq < b.gseq;
                     });
    for (const IndexedEvent &ie : merged)
        processOne(ie.tid, ie.index, *ie.e);
}

} // namespace bfly
