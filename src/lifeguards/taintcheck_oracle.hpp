/**
 * @file
 * Exact sequential TAINTCHECK over a serialized execution order.
 *
 * Ground truth for the butterfly TAINTCHECK: replays the true visibility
 * order, propagating taint exactly, and flags every Use of a tainted value.
 * Taint semantics (matching the butterfly side):
 *   - TaintSrc taints its range; Untaint untaints it;
 *   - Assign taints the destination iff any source is tainted;
 *   - a plain Write stores trusted data (untaints its range);
 *   - Use of a tainted location is the error ADDRCHECK... TAINTCHECK flags.
 */

#ifndef BUTTERFLY_LIFEGUARDS_TAINTCHECK_ORACLE_HPP
#define BUTTERFLY_LIFEGUARDS_TAINTCHECK_ORACLE_HPP

#include "common/shadow_memory.hpp"
#include "lifeguards/report.hpp"
#include "trace/trace.hpp"

namespace bfly {

/** Configuration shared with the butterfly TAINTCHECK. */
struct TaintCheckConfig
{
    unsigned granularity = 4;
    Addr keyOf(Addr addr) const { return addr / granularity; }
};

/** Sequential, exact TAINTCHECK. */
class TaintCheckOracle
{
  public:
    explicit TaintCheckOracle(const TaintCheckConfig &config);

    /** Replay the trace in true visibility (gseq) order. */
    void runOnTrace(const Trace &trace);

    void processOne(ThreadId tid, std::uint64_t index, const Event &e);

    const ErrorLog &errors() const { return errors_; }

    /** True if @p addr is currently tainted. */
    bool tainted(Addr addr) const;

  private:
    TaintCheckConfig config_;
    ShadowMemory<std::uint8_t> taint_{0};
    ErrorLog errors_;
};

} // namespace bfly

#endif // BUTTERFLY_LIFEGUARDS_TAINTCHECK_ORACLE_HPP
