/**
 * @file
 * ADDRCHECK: the memory-allocation-checking lifeguard (paper Section 6.1).
 *
 * ADDRCHECK verifies that every access touches allocated memory, frees only
 * allocated memory, and allocations target unallocated memory. The
 * butterfly adaptation instantiates reaching *expressions* with the fact
 * "address x is allocated": allocation generates, deallocation kills. The
 * checking algorithm has two parts:
 *
 *   pass 1 (local): every access/free must find its address allocated in
 *   the LSOS at that instruction; every alloc must find it unallocated;
 *
 *   pass 2 (isolation): every alloc/free must be isolated from concurrent
 *   (wings) allocs/frees *and* accesses of the same address, and every
 *   access isolated from concurrent allocs/frees — a metadata state change
 *   racing with any operation on the address is flagged.
 *
 * The oracle in addrcheck_oracle.hpp replays the true interleaving and
 * provides ground truth; Theorem 6.1 (zero false negatives) is checked in
 * the test suite against both SC and TSO executions.
 *
 * Thread safety: pass1/pass2 may be invoked concurrently for different
 * blocks of the same pass (WindowSchedule's parallel mode). Per-block
 * state is disjoint; shared state (error log, counters) is committed
 * once per block under a mutex. finalizeEpoch is single-writer by design.
 */

#ifndef BUTTERFLY_LIFEGUARDS_ADDRCHECK_HPP
#define BUTTERFLY_LIFEGUARDS_ADDRCHECK_HPP

#include <array>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/addr_set.hpp"
#include "butterfly/window.hpp"
#include "lifeguards/report.hpp"

namespace bfly {

/** Configuration shared by the butterfly lifeguard and the oracle. */
struct AddrCheckConfig
{
    /** Metadata granularity in bytes (1 = per-byte, 8 = per-word). */
    unsigned granularity = 8;
    /** Monitored address window (heap-only monitoring, as in Section 7.1:
     *  "we filter out stack accesses"). Events outside are ignored. */
    Addr heapBase = 0;
    Addr heapLimit = kNoAddr;

    Addr keyOf(Addr addr) const { return addr / granularity; }

    bool
    monitored(Addr addr) const
    {
        return addr >= heapBase && addr < heapLimit;
    }
};

/** Butterfly-analysis ADDRCHECK. Drive with WindowSchedule. */
class ButterflyAddrCheck : public AnalysisDriver
{
  public:
    /** Streaming-friendly: the driver only needs the thread count (block
     *  identities come from BlockView::first), so it can run over an
     *  EpochStream without ever materializing a layout. */
    ButterflyAddrCheck(std::size_t num_threads,
                       const AddrCheckConfig &config);
    ButterflyAddrCheck(const EpochLayout &layout,
                       const AddrCheckConfig &config)
        : ButterflyAddrCheck(layout.numThreads(), config)
    {}

    // AnalysisDriver hooks.
    void pass1(const BlockView &block) override;
    void pass2(const BlockView &block) override;
    void finalizeEpoch(EpochId l) override;

    /**
     * Batched pass 1: transpose the block to columnar form, expand it
     * into (key, op) pairs, sort by key, and build the summary sets by
     * run — one LSOS probe per distinct key and run-length bulk inserts
     * into the FlatSets, instead of one hash probe per event. Produces
     * bit-identical results to the scalar walk (error records in the
     * same order, identical summaries and counters); pass 2 and
     * finalizeEpoch are unchanged either way.
     */
    void setBatchMode(bool enabled) override { batched_ = enabled; }

    /**
     * ADDRCHECK's pass 2 and finalize consume only pass-1 summaries —
     * never the SOS that finalize advances, nor pass-2 results — so the
     * pipelined schedule may run them relaxed: finalizeEpoch(l) does not
     * gate pass 2 of epoch l, and no global synchronization remains.
     */
    bool finalizeAfterPass2() const override { return false; }

    /** All flagged events (one record per event). */
    const ErrorLog &errors() const { return errors_; }

    /** Current SOS: keys believed allocated 2+ epochs ago. */
    const AddrSet &sosNow() const { return sos_; }

    /** Metadata checks performed (cost-model feed). */
    std::uint64_t eventsChecked() const { return eventsChecked_; }
    std::uint64_t isolationViolations() const { return isolationViol_; }

    /** Newly-flagged events attributed to block (l, t). */
    std::uint64_t errorsInBlock(EpochId l, ThreadId t) const;

    /** |GEN| + |KILL| + |ACCESS| of block (l, t)'s pass-1 summary —
     *  the work the meet step performs per wing block. */
    std::uint64_t summarySize(EpochId l, ThreadId t) const;

    /** |GEN_l| + |KILL_l|: elements folded into the SOS for epoch l. */
    std::uint64_t sosUpdateWork(EpochId l) const;

  private:
    static constexpr std::size_t kWindow = 4; ///< ring depth (epochs)

    /** Per-block pass-1 summary s_{l,t}. */
    struct BlockSummary
    {
        AddrSet genEnd;   ///< allocated at block end (net)
        AddrSet killEnd;  ///< freed at block end (net)
        AddrSet allocAny; ///< allocated anywhere in the block
        AddrSet freeAny;  ///< freed anywhere in the block
        AddrSet access;   ///< ACCESS_{l,t}: keys read or written
        EpochId epoch = kNoEpoch;
    };

    static std::uint64_t
    blockKey(EpochId l, ThreadId t)
    {
        return (l << 8) | t;
    }

    BlockSummary &slot(EpochId l, ThreadId t);
    const BlockSummary *slotIfValid(EpochId l, ThreadId t) const;

    /** Key membership in LSOS_{l,t} before any local delta. */
    bool lsosBaseContains(Addr key, EpochId l, ThreadId t) const;

    /** Expand an address range into monitored metadata keys. */
    void keysOf(Addr base, std::uint16_t size,
                std::vector<Addr> &out) const;

    /** Commit a block's locally-collected reports under the mutex. */
    void commitBlock(EpochId l, ThreadId t,
                     const std::vector<ErrorRecord> &local_errors,
                     std::uint64_t checks, std::uint64_t isolation);

    /** Record the finished pass-1 summary's size and commit errors —
     *  the shared tail of the scalar and batched kernels. */
    void finishPass1(EpochId l, ThreadId t, const BlockSummary &s,
                     const std::vector<ErrorRecord> &local_errors,
                     std::uint64_t checks);

    /** The batched (columnar sort-by-key) pass-1 kernel. */
    void pass1Batched(const BlockView &block);

    AddrCheckConfig config_;
    bool batched_ = false; ///< batched pass-1 kernels selected

    /** Ring of per-epoch, per-thread summaries. */
    std::vector<std::array<BlockSummary, kWindow>> summaries_; ///< [t]

    AddrSet sos_; ///< single-writer SOS, advanced in finalizeEpoch

    std::mutex mutex_; ///< guards the shared members below
    ErrorLog errors_;
    std::unordered_map<std::uint64_t, std::uint64_t> errorsPerBlock_;
    std::unordered_map<std::uint64_t, std::uint64_t> summarySizes_;
    std::unordered_map<EpochId, std::uint64_t> sosWork_;
    std::uint64_t eventsChecked_ = 0;
    std::uint64_t isolationViol_ = 0;
};

} // namespace bfly

#endif // BUTTERFLY_LIFEGUARDS_ADDRCHECK_HPP
