#include "lifeguards/report.hpp"

#include <sstream>

namespace bfly {

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::UnallocatedAccess: return "unallocated-access";
      case ErrorKind::UnallocatedFree:   return "unallocated-free";
      case ErrorKind::DoubleAlloc:       return "double-alloc";
      case ErrorKind::NonIsolatedOp:     return "non-isolated-op";
      case ErrorKind::TaintedUse:        return "tainted-use";
      case ErrorKind::UninitializedRead: return "uninitialized-read";
      case ErrorKind::DataRace:          return "data-race";
      case ErrorKind::AddrLeak:          return "addr-leak";
    }
    return "?";
}

std::string
ErrorRecord::toString() const
{
    std::ostringstream os;
    os << errorKindName(kind) << " thread " << tid << " instr #" << index
       << " addr 0x" << std::hex << addr << std::dec;
    return os.str();
}

AccuracyReport
compareToOracle(const ErrorLog &monitored, const ErrorLog &oracle,
                unsigned granularity)
{
    AccuracyReport report;
    for (const ErrorRecord &rec : monitored.records()) {
        if (oracle.flagged(rec.tid, rec.index))
            ++report.truePositives;
        else
            ++report.falsePositives;
    }

    auto key_range = [&](const ErrorRecord &rec) {
        const Addr lo = rec.addr / granularity;
        const Addr hi =
            (rec.addr + (rec.size > 0 ? rec.size - 1 : 0)) / granularity;
        return std::pair<Addr, Addr>{lo, hi};
    };
    auto overlaps = [&](const ErrorRecord &a, const ErrorRecord &b) {
        const auto [alo, ahi] = key_range(a);
        const auto [blo, bhi] = key_range(b);
        return alo <= bhi && blo <= ahi;
    };

    for (const ErrorRecord &rec : oracle.records()) {
        if (monitored.flagged(rec.tid, rec.index))
            continue;
        // Theorem 6.1/6.2 guarantee an error is flagged for the same
        // race, possibly attributed to a different instruction: accept
        // any monitored record on an overlapping metadata key.
        bool covered = false;
        for (const ErrorRecord &m : monitored.records()) {
            if (overlaps(rec, m)) {
                covered = true;
                break;
            }
        }
        if (!covered)
            ++report.falseNegatives;
    }
    return report;
}

} // namespace bfly
