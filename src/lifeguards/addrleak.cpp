#include "lifeguards/addrleak.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bfly {

ButterflyAddrLeak::ButterflyAddrLeak(std::size_t num_threads,
                                     const AddrLeakConfig &config)
    : config_(config), states_(num_threads)
{
    ensure(config_.granularity > 0, "granularity must be positive");
}

ButterflyAddrLeak::BlockState &
ButterflyAddrLeak::slotRef(EpochId l, ThreadId t)
{
    return states_[t][l % kWindow];
}

const ButterflyAddrLeak::BlockState *
ButterflyAddrLeak::slotIfValid(EpochId l, ThreadId t) const
{
    const BlockState &s = states_[t][l % kWindow];
    return s.epoch == l ? &s : nullptr;
}

void
ButterflyAddrLeak::pass1(const BlockView &block)
{
    const EpochId l = block.epoch;
    const ThreadId t = block.thread;
    BlockState &s = slotRef(l, t);
    s = BlockState{};
    s.epoch = l;

    auto push = [&](InstrOffset i, Addr dst_key, RuleKind kind,
                    const Addr *srcs, std::uint8_t nsrc) {
        Rule r;
        r.offset = i;
        r.dst = dst_key;
        r.kind = kind;
        r.nsrc = nsrc;
        for (std::uint8_t n = 0; n < nsrc; ++n)
            r.src[n] = srcs[n];
        s.rulesByKey[dst_key].push_back(s.rules.size());
        s.rules.push_back(r);
    };

    for (InstrOffset i = 0; i < block.size(); ++i) {
        const Event &e = block.events[i];
        switch (e.kind) {
          case EventKind::Alloc:
            // The allocation returns a heap pointer into its base cell.
            if (config_.monitored(e.addr))
                push(i, config_.keyOf(e.addr), RuleKind::Gen, nullptr, 0);
            break;

          case EventKind::Write:
          case EventKind::TaintSrc:
          case EventKind::Untaint:
            // Plain data overwrites the cell: any pointer value is gone.
            if (config_.monitored(e.addr))
                push(i, config_.keyOf(e.addr), RuleKind::Kill, nullptr, 0);
            break;

          case EventKind::Assign: {
            if (!config_.monitored(e.addr))
                break;
            const Addr raw[2] = {e.src0, e.src1};
            Addr srcs[2];
            std::uint8_t nsrc = 0;
            for (unsigned n = 0; n < e.nsrc; ++n)
                if (config_.monitored(raw[n]))
                    srcs[nsrc++] = config_.keyOf(raw[n]);
            // A copy purely from untracked memory cannot carry a heap
            // pointer — it degenerates to a kill.
            if (nsrc == 0)
                push(i, config_.keyOf(e.addr), RuleKind::Kill, nullptr, 0);
            else
                push(i, config_.keyOf(e.addr), RuleKind::Copy, srcs, nsrc);
            break;
          }

          case EventKind::Output:
            if (config_.monitored(e.addr)) {
                Check c;
                c.offset = i;
                c.addr = e.addr;
                c.key = config_.keyOf(e.addr);
                c.size = e.size;
                s.checks.push_back(c);
            }
            break;

          default:
            break;
        }
    }
}

bool
ButterflyAddrLeak::mayTaint(const Rule &rule, const AddrSet &wm) const
{
    switch (rule.kind) {
      case RuleKind::Gen:
        return true;
      case RuleKind::Kill:
        return false;
      case RuleKind::Copy:
        for (std::uint8_t n = 0; n < rule.nsrc; ++n)
            if (wm.contains(rule.src[n]))
                return true;
        return false;
    }
    return false;
}

const AddrSet &
ButterflyAddrLeak::ensureWindowMay(EpochId l)
{
    std::lock_guard<std::mutex> guard(wmMutex_);
    if (windowMayEpoch_ == l)
        return windowMay_;

    // WM_l: least fixpoint over the window's rules seeded by the SOS —
    // everything that might hold a heap pointer at *some* point of
    // *some* interleaving of epochs l-1..l+1.
    windowMay_ = sosPrev_;
    const EpochId lo = l >= 1 ? l - 1 : 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (EpochId w = lo; w <= l + 1; ++w) {
            for (ThreadId t = 0; t < states_.size(); ++t) {
                const BlockState *s = slotIfValid(w, t);
                if (!s)
                    continue;
                for (const Rule &r : s->rules) {
                    if (!windowMay_.contains(r.dst) &&
                        mayTaint(r, windowMay_)) {
                        windowMay_.insert(r.dst);
                        changed = true;
                    }
                }
            }
        }
    }
    windowMayEpoch_ = l;
    return windowMay_;
}

void
ButterflyAddrLeak::pass2(const BlockView &block)
{
    const EpochId l = block.epoch;
    const ThreadId t = block.thread;
    const BlockState *s = slotIfValid(l, t);
    if (!s || s->checks.empty())
        return;

    const AddrSet &wm = ensureWindowMay(l);

    // Cells a wing rule may taint: any such rule could interleave
    // between this thread's last own write and the sink.
    AddrSet wing_gen;
    const EpochId lo = l >= 1 ? l - 1 : 0;
    for (EpochId w = lo; w <= l + 1; ++w) {
        for (ThreadId u = 0; u < states_.size(); ++u) {
            if (u == t)
                continue;
            const BlockState *ws = slotIfValid(w, u);
            if (!ws)
                continue;
            for (const Rule &r : ws->rules)
                if (mayTaint(r, wm))
                    wing_gen.insert(r.dst);
        }
    }

    // The thread's own value entering this block: last write in the
    // head block (epoch l-1) if any, else the SOS snapshot SOS_l.
    const BlockState *head = l >= 1 ? slotIfValid(l - 1, t) : nullptr;
    auto head_may = [&](Addr key) {
        if (head) {
            auto it = head->rulesByKey.find(key);
            if (it != head->rulesByKey.end()) {
                const Rule &last = head->rules[it->second.back()];
                switch (last.kind) {
                  case RuleKind::Gen:  return true;
                  case RuleKind::Kill: return false;
                  case RuleKind::Copy: return mayTaint(last, wm);
                }
            }
        }
        return sosPrev_.contains(key);
    };

    std::vector<ErrorRecord> local_errors;
    std::unordered_map<Addr, const Rule *> last_own;
    std::size_t ri = 0;
    for (const Check &c : s->checks) {
        while (ri < s->rules.size() && s->rules[ri].offset < c.offset) {
            last_own[s->rules[ri].dst] = &s->rules[ri];
            ++ri;
        }

        bool may = false;
        auto it = last_own.find(c.key);
        if (it != last_own.end()) {
            // Own write precedes the sink: its value, unless a wing
            // rule slipped in after it and re-tainted the cell.
            switch (it->second->kind) {
              case RuleKind::Gen:
                may = true;
                break;
              case RuleKind::Kill:
                may = wing_gen.contains(c.key);
                break;
              case RuleKind::Copy:
                may = mayTaint(*it->second, wm) ||
                      wing_gen.contains(c.key);
                break;
            }
        } else {
            may = head_may(c.key) || wing_gen.contains(c.key);
        }

        if (may) {
            local_errors.push_back(ErrorRecord{
                t, block.first + c.offset, c.addr, ErrorKind::AddrLeak,
                c.size});
        }
    }

    std::lock_guard<std::mutex> guard(mutex_);
    for (const ErrorRecord &rec : local_errors)
        errors_.report(rec);
    checks_ += s->checks.size();
}

void
ButterflyAddrLeak::finalizeEpoch(EpochId l)
{
    const AddrSet &wm = ensureWindowMay(l);
    const std::size_t nthreads = states_.size();

    // May-gen: each thread's LAST rule per cell, resolved against the
    // window may-set. The value a cell carries out of the epoch is the
    // last write to it in the true interleaving, and within a thread a
    // later rule always overwrites an earlier one — so the epoch-final
    // rule is necessarily some thread's last rule for the cell, and
    // folding only those is sound. Mid-epoch taints still reach the
    // fold through copies: their liveness is judged under WM_l, which
    // keeps any-rule semantics. Folding every rule instead (an earlier
    // revision did) breaks FP(H) <= FP(4H): a gen the same thread kills
    // later in the epoch stays in the SOS forever at fine H, while a
    // coarse H resolves the sink exactly in-block and stays quiet.
    AddrSet gen;
    for (ThreadId t = 0; t < nthreads; ++t) {
        const BlockState *s = slotIfValid(l, t);
        if (!s)
            continue;
        for (const auto &[key, idxs] : s->rulesByKey)
            if (mayTaint(s->rules[idxs.back()], wm))
                gen.insert(key);
    }

    // Must-kill: every thread that wrote the cell ended on a kill.
    std::unordered_map<Addr, bool> all_last_kill;
    for (ThreadId t = 0; t < nthreads; ++t) {
        const BlockState *s = slotIfValid(l, t);
        if (!s)
            continue;
        for (const auto &[key, idxs] : s->rulesByKey) {
            const bool last_kill =
                s->rules[idxs.back()].kind == RuleKind::Kill;
            auto [it, fresh] = all_last_kill.emplace(key, last_kill);
            if (!fresh)
                it->second = it->second && last_kill;
        }
    }

    // SOS_{l+2} = GEN_l U (SOS_{l+1} - MUSTKILL_l), double-buffered so
    // epoch l+1's pass 2 still sees SOS_{l+1} in sosPrev_.
    sosPrev_ = sosCur_;
    for (const auto &[key, kill] : all_last_kill)
        if (kill && !gen.contains(key))
            sosCur_.erase(key);
    sosCur_.unionWith(gen);
}

AddrLeakOracle::AddrLeakOracle(const AddrLeakConfig &config) : config_(config)
{
    ensure(config_.granularity > 0, "granularity must be positive");
}

void
AddrLeakOracle::processOne(ThreadId tid, std::uint64_t index, const Event &e)
{
    switch (e.kind) {
      case EventKind::Alloc:
        if (config_.monitored(e.addr))
            tainted_.insert(config_.keyOf(e.addr));
        break;

      case EventKind::Write:
      case EventKind::TaintSrc:
      case EventKind::Untaint:
        if (config_.monitored(e.addr))
            tainted_.erase(config_.keyOf(e.addr));
        break;

      case EventKind::Assign: {
        if (!config_.monitored(e.addr))
            break;
        const Addr raw[2] = {e.src0, e.src1};
        bool taint = false;
        for (unsigned n = 0; n < e.nsrc; ++n) {
            if (config_.monitored(raw[n]) &&
                tainted_.contains(config_.keyOf(raw[n]))) {
                taint = true;
            }
        }
        if (taint)
            tainted_.insert(config_.keyOf(e.addr));
        else
            tainted_.erase(config_.keyOf(e.addr));
        break;
      }

      case EventKind::Output:
        if (config_.monitored(e.addr) &&
            tainted_.contains(config_.keyOf(e.addr))) {
            errors_.report(tid, index, e.addr, ErrorKind::AddrLeak,
                           e.size);
        }
        break;

      default:
        break;
    }
}

void
AddrLeakOracle::runOnTrace(const Trace &trace)
{
    struct IndexedEvent
    {
        std::uint64_t gseq;
        ThreadId tid;
        std::uint64_t index;
        const Event *e;
    };
    std::vector<IndexedEvent> order;
    for (const ThreadTrace &tt : trace.threads) {
        std::uint64_t index = 0;
        for (const Event &e : tt.events) {
            if (e.kind == EventKind::Heartbeat)
                continue;
            order.push_back(IndexedEvent{e.gseq, tt.tid, index++, &e});
        }
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const IndexedEvent &a, const IndexedEvent &b) {
                         return a.gseq < b.gseq;
                     });
    for (const IndexedEvent &ie : order)
        processOne(ie.tid, ie.index, *ie.e);
}

} // namespace bfly
