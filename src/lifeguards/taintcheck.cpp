#include "lifeguards/taintcheck.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"
#include "telemetry/metrics.hpp"
#include "trace/block_batch.hpp"

namespace bfly {

namespace {

/** Pre-interned TAINTCHECK metric ids (one-time registration). */
struct TaintCheckTelemetry
{
    telemetry::MetricId epochsFinalized;
    telemetry::MetricId sosSize;        ///< gauge: tainted keys in SOS
    telemetry::MetricId epochGenKill;   ///< histogram: |GEN_l| + |KILL_l|

    static const TaintCheckTelemetry &
    get()
    {
        static const TaintCheckTelemetry m = [] {
            auto &r = telemetry::registry();
            TaintCheckTelemetry s;
            s.epochsFinalized =
                r.counter("bfly.taintcheck.epochs_finalized");
            s.sosSize = r.gauge("bfly.taintcheck.sos_size");
            s.epochGenKill =
                r.histogram("bfly.taintcheck.epoch_genkill_size");
            return s;
        }();
        return m;
    }
};

/** Reusable per-worker buffers for the batched pass-1 kernel. */
struct TaintBatchScratch
{
    BlockBatch batch;
    std::vector<Addr> dsts;            ///< rule destination, per rule
    std::vector<std::uint32_t> counts; ///< groupByKey bucket scratch
    std::vector<std::uint32_t> order;  ///< rule indices grouped by dst
};

TaintBatchScratch &
taintBatchScratch()
{
    thread_local TaintBatchScratch s;
    return s;
}

} // namespace

ButterflyTaintCheck::ButterflyTaintCheck(std::size_t num_threads,
                                         const TaintCheckConfig &config,
                                         TaintTermination termination)
    : config_(config), termination_(termination), blocks_(num_threads)
{}

ButterflyTaintCheck::BlockState &
ButterflyTaintCheck::slot(EpochId l, ThreadId t)
{
    return blocks_[t][l % kWindow];
}

const ButterflyTaintCheck::BlockState *
ButterflyTaintCheck::slotIfValid(EpochId l, ThreadId t) const
{
    const BlockState &s = blocks_[t][l % kWindow];
    return s.epoch == l ? &s : nullptr;
}

void
ButterflyTaintCheck::pass1Batched(const BlockView &block)
{
    BlockState &bs = slot(block.epoch, block.thread);
    bs = BlockState{};
    bs.epoch = block.epoch;

    TaintBatchScratch &scratch = taintBatchScratch();
    BlockBatch &b = scratch.batch;
    b.assign(block);
    scratch.dsts.clear();

    // Linear sweep over the columns: identical rule vector (same rules,
    // same order) as the scalar build; the per-key grouping is deferred
    // to one stable partition below.
    auto add_rule = [&](const Rule &r) {
        scratch.dsts.push_back(r.dst);
        bs.rules.push_back(r);
    };
    auto keys_over = [&](Addr base, std::uint16_t size, auto &&fn) {
        if (base == kNoAddr)
            return;
        const Addr first = config_.keyOf(base);
        const Addr last =
            config_.keyOf(base + (size > 0 ? size - 1 : 0));
        for (Addr k = first; k <= last; ++k)
            fn(k);
    };

    for (std::size_t i = 0; i < b.size(); ++i) {
        const InstrOffset off = static_cast<InstrOffset>(i);
        switch (b.kinds[i]) {
          case EventKind::TaintSrc:
            keys_over(b.addrs[i], b.sizes[i], [&](Addr k) {
                add_rule(Rule{off, k, Rhs::Taint, {}, 0});
            });
            break;
          case EventKind::Untaint:
          case EventKind::Write:
            keys_over(b.addrs[i], b.sizes[i], [&](Addr k) {
                add_rule(Rule{off, k, Rhs::Untaint, {}, 0});
            });
            break;
          case EventKind::Assign: {
            Rule proto{off, 0, Rhs::Copy, {}, 0};
            if (b.nsrc[i] >= 1)
                proto.srcs[proto.nsrc++] = config_.keyOf(b.src0[i]);
            if (b.nsrc[i] >= 2)
                proto.srcs[proto.nsrc++] = config_.keyOf(b.src1[i]);
            keys_over(b.addrs[i], b.sizes[i], [&](Addr k) {
                Rule r = proto;
                r.dst = k;
                add_rule(r);
            });
            break;
          }
          default:
            break;
        }
    }

    // Group rule indices per destination key — one map insert per
    // distinct key instead of one hash probe per rule. The stable
    // partition keeps each key's run ascending in program order — a
    // correctness requirement, because pass 2's per-check resolution
    // budget makes rule traversal order observable.
    groupByKey(
        scratch.dsts.size(),
        [&](std::size_t i) { return scratch.dsts[i]; }, scratch.counts,
        scratch.order);
    std::size_t i = 0;
    const std::size_t m = scratch.order.size();
    while (i < m) {
        const Addr key = scratch.dsts[scratch.order[i]];
        std::size_t j = i;
        while (j < m && scratch.dsts[scratch.order[j]] == key)
            ++j;
        std::vector<std::size_t> &v = bs.rulesByKey[key];
        v.reserve(j - i);
        for (; i < j; ++i)
            v.push_back(scratch.order[i]);
    }
}

void
ButterflyTaintCheck::pass1(const BlockView &block)
{
    if (batched_) {
        pass1Batched(block);
        return;
    }

    BlockState &bs = slot(block.epoch, block.thread);
    bs = BlockState{};
    bs.epoch = block.epoch;

    auto add_rule = [&](Rule r) {
        bs.rulesByKey[r.dst].push_back(bs.rules.size());
        bs.rules.push_back(r);
    };
    auto keys_over = [&](Addr base, std::uint16_t size, auto &&fn) {
        if (base == kNoAddr)
            return;
        const Addr first = config_.keyOf(base);
        const Addr last =
            config_.keyOf(base + (size > 0 ? size - 1 : 0));
        for (Addr k = first; k <= last; ++k)
            fn(k);
    };

    for (InstrOffset i = 0; i < block.size(); ++i) {
        const Event &e = block.events[i];
        switch (e.kind) {
          case EventKind::TaintSrc:
            keys_over(e.addr, e.size, [&](Addr k) {
                add_rule(Rule{i, k, Rhs::Taint, {}, 0});
            });
            break;
          case EventKind::Untaint:
          case EventKind::Write:
            keys_over(e.addr, e.size, [&](Addr k) {
                add_rule(Rule{i, k, Rhs::Untaint, {}, 0});
            });
            break;
          case EventKind::Assign: {
            Rule proto{i, 0, Rhs::Copy, {}, 0};
            const Addr srcs[2] = {e.src0, e.src1};
            for (unsigned n = 0; n < e.nsrc && n < 2; ++n)
                proto.srcs[proto.nsrc++] = config_.keyOf(srcs[n]);
            keys_over(e.addr, e.size, [&](Addr k) {
                Rule r = proto;
                r.dst = k;
                add_rule(r);
            });
            break;
          }
          default:
            break;
        }
    }
}

bool
ButterflyTaintCheck::lsosTainted(Addr key, EpochId l, ThreadId t) const
{
    const BlockState *head = l >= 1 ? slotIfValid(l - 1, t) : nullptr;
    if (head) {
        auto it = head->lastCheck.find(key);
        if (it != head->lastCheck.end()) {
            if (it->second)
                return true;
            // The head untainted key, but a taint resolved in epoch l-2 by
            // another thread may interleave after the head (adjacency):
            // the reaching-definitions LSOS "resurrection" term.
            if (l >= 2) {
                for (ThreadId u = 0; u < blocks_.size(); ++u) {
                    if (u == t)
                        continue;
                    const BlockState *w = slotIfValid(l - 2, u);
                    if (!w)
                        continue;
                    auto wit = w->lastCheck.find(key);
                    if (wit != w->lastCheck.end() && wit->second)
                        return true;
                }
            }
            return false;
        }
    }
    return sosPrev_.contains(key);
}

bool
ButterflyTaintCheck::wingVisibleTainted(Addr key, EpochId l,
                                        ThreadId t) const
{
    if (lsosTainted(key, l, t))
        return true;
    // A wing reader is unordered against the head, so it can observe
    // (a) a taint the head held mid-block even if a later head write
    // untainted it, or (b) the pre-head value — the SOS taint
    // summarizing epochs <= l-2 — even if the head overwrote it.
    if (l >= 1) {
        const BlockState *head = slotIfValid(l - 1, t);
        if (head && head->everTainted.contains(key))
            return true;
        if (head && head->lastCheck.count(key))
            return sosPrev_.contains(key);
    }
    return false;
}

bool
ButterflyTaintCheck::wingsTaint(Addr key, CheckCtx &ctx)
{
    if (ctx.depth >= kMaxDepth)
        return true; // conservative: assume tainted rather than miss

    if (termination_ == TaintTermination::Relaxed) {
        if (std::find(ctx.path.begin(), ctx.path.end(), key) !=
            ctx.path.end()) {
            return false; // cycle: no new taint can enter through it
        }
    }
    ctx.path.push_back(key);
    ++ctx.depth;

    bool tainted = false;
    for (EpochId w = ctx.wingLo; w <= ctx.wingHi && !tainted; ++w) {
        for (ThreadId u = 0; u < blocks_.size() && !tainted; ++u) {
            if (u == ctx.bodyThread)
                continue;
            const BlockState *bs = slotIfValid(w, u);
            if (!bs)
                continue;
            // Epoch l-1 wings finished their own pass 2 (the schedule
            // orders pass2(l-1) before pass2(l)), so their *resolved*
            // taint conclusions are available — and necessary: they were
            // derived with a window reaching epoch l-2, whose transfer
            // functions this body can no longer see. If the wing block
            // ever held the key tainted, a reader here could observe it.
            if (w + 1 == ctx.bodyEpoch &&
                bs->everTainted.contains(key)) {
                tainted = true;
                break;
            }
            auto it = bs->rulesByKey.find(key);
            if (it == bs->rulesByKey.end())
                continue;
            for (std::size_t ridx : it->second) {
                const Rule &r = bs->rules[ridx];
                const InstrId pos{w, u, r.i};
                if (termination_ ==
                    TaintTermination::SequentialConsistency) {
                    // Per-thread counter: thread u's contribution to the
                    // inheritance chain must descend in program order.
                    const auto &ctr = ctx.counters[u];
                    if (ctr && !strictlyBefore(pos, *ctr, true))
                        continue;
                }
                if (r.rhs == Rhs::Taint) {
                    tainted = true;
                    break;
                }
                if (r.rhs == Rhs::Untaint)
                    continue; // only offers an untainted possibility
                // Copy: recurse into parents under an updated counter.
                const auto saved = ctx.counters[u];
                ctx.counters[u] = pos;
                for (unsigned n = 0; n < r.nsrc && !tainted; ++n)
                    tainted = resolveKey(r.srcs[n], ctx);
                ctx.counters[u] = saved;
                if (tainted)
                    break;
            }
        }
    }

    --ctx.depth;
    ctx.path.pop_back();
    return tainted;
}

bool
ButterflyTaintCheck::resolveKey(Addr key, CheckCtx &ctx)
{
    if (ctx.resolved - ctx.budgetMark >= kMaxResolvedPerCheck)
        return true; // conservative: assume tainted rather than miss
    ++ctx.resolved;
    const bool relaxed = termination_ == TaintTermination::Relaxed;

    // Phase-one roots (Lemma 6.3): taints concluded over epochs l-1..l,
    // usable if their body-offset dependence respects program order.
    if (ctx.phaseOneRoots) {
        auto it = ctx.phaseOneRoots->find(key);
        if (it != ctx.phaseOneRoots->end() &&
            (relaxed ||
             it->second < static_cast<std::int64_t>(ctx.checkOffset))) {
            return true;
        }
    }

    auto lw = ctx.localState->find(key);
    if (ctx.depth == 0) {
        // Direct source of the checking instruction: program order pins
        // the own-thread view to the latest local write; absent that,
        // the LSOS. A locally-untainted value may still be overwritten
        // by a concurrent wing write before the read, so fall through.
        if (lw != ctx.localState->end()) {
            if (lw->second)
                return true;
        } else if (lsosTainted(key, ctx.bodyEpoch, ctx.bodyThread)) {
            return true;
        }
    } else {
        // Inside a wing inheritance chain there is no own-thread anchor
        // except the checking instruction itself: a wing may read any
        // value the key held in the window — a body-local taint at an
        // earlier offset (SC) or any offset (relaxed), or the pre-block
        // LSOS value even if the body later overwrote it.
        auto lo = ctx.localTaintOffset->find(key);
        if (lo != ctx.localTaintOffset->end() &&
            (relaxed || lo->second < ctx.checkOffset)) {
            return true;
        }
        if (wingVisibleTainted(key, ctx.bodyEpoch, ctx.bodyThread))
            return true;
    }
    return wingsTaint(key, ctx);
}

std::unordered_map<Addr, std::int64_t>
ButterflyTaintCheck::phaseOneFixpoint(
    EpochId l, ThreadId t, EpochId wing_lo, EpochId wing_hi,
    const std::unordered_map<Addr, InstrOffset> &local_taint_offset) const
{
    std::unordered_map<Addr, std::int64_t> cost;

    // Seed: body-local taints at their offsets; LSOS taints of every key
    // the wing rules mention, independent of the body.
    for (const auto &[key, off] : local_taint_offset)
        cost[key] = static_cast<std::int64_t>(off);

    std::vector<const BlockState *> wings;
    for (EpochId w = wing_lo; w <= wing_hi; ++w) {
        for (ThreadId u = 0; u < blocks_.size(); ++u) {
            if (u == t)
                continue;
            if (const BlockState *bs = slotIfValid(w, u))
                wings.push_back(bs);
        }
    }
    auto seed_lsos = [&](Addr key) {
        if (cost.count(key))
            return;
        if (wingVisibleTainted(key, l, t))
            cost[key] = kNoLocal;
    };
    for (const BlockState *bs : wings) {
        for (const Rule &r : bs->rules) {
            for (unsigned n = 0; n < r.nsrc; ++n)
                seed_lsos(r.srcs[n]);
        }
        // Resolved conclusions of completed (epoch l-1) wings seed the
        // fixpoint body-independently, for the same reason as above.
        if (bs->epoch + 1 == l) {
            for (Addr key : bs->everTainted)
                cost.emplace(key, kNoLocal);
        }
    }

    // Min-cost relaxation over the wing rules until stable. A Copy rule
    // propagates the cheapest tainted source into its destination; a
    // Taint rule makes its destination body-independent. Untaint rules
    // never lower a cost (they only add untainted possibilities).
    std::unordered_map<Addr, std::int64_t> wing_delivered;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const BlockState *bs : wings) {
            for (const Rule &r : bs->rules) {
                std::int64_t best = std::numeric_limits<std::int64_t>::max();
                if (r.rhs == Rhs::Taint) {
                    best = kNoLocal;
                } else if (r.rhs == Rhs::Copy) {
                    for (unsigned n = 0; n < r.nsrc; ++n) {
                        auto it = cost.find(r.srcs[n]);
                        if (it != cost.end())
                            best = std::min(best, it->second);
                    }
                } else {
                    continue;
                }
                if (best == std::numeric_limits<std::int64_t>::max())
                    continue;
                auto it = cost.find(r.dst);
                if (it == cost.end() || best < it->second) {
                    cost[r.dst] = best;
                    changed = true;
                }
                auto [wit, inserted] = wing_delivered.emplace(r.dst, best);
                if (!inserted && best < wit->second) {
                    wit->second = best;
                    changed = true;
                }
            }
        }
    }
    // Only taints a *wing write* can deliver count as roots: body-local
    // seeds are intermediate history a later local write supersedes, and
    // LSOS seeds are re-derivable directly. A wing write, by contrast,
    // can land after any body instruction its derivation permits.
    return wing_delivered;
}

void
ButterflyTaintCheck::pass2(const BlockView &block)
{
    const EpochId l = block.epoch;
    const ThreadId t = block.thread;
    BlockState &bs = slot(l, t);
    ensure(bs.epoch == l, "pass 2 before pass 1");

    // Resolved status of the last write per key, per phase; the final
    // LASTCHECK is their OR (a taint concluded in either phase persists).
    std::unordered_map<Addr, bool> last_check_phase[2];
    std::unordered_map<Addr, std::int64_t> roots;

    // Pass-2 blocks run concurrently; buffer shared-state updates and
    // commit them once at the end of the block.
    std::vector<ErrorRecord> block_errors;
    std::uint64_t block_resolved = 0;

    auto keys_over = [&](Addr base, std::uint16_t size, auto &&fn) {
        if (base == kNoAddr)
            return;
        const Addr first = config_.keyOf(base);
        const Addr last =
            config_.keyOf(base + (size > 0 ? size - 1 : 0));
        for (Addr k = first; k <= last; ++k)
            fn(k);
    };

    for (int phase = 1; phase <= 2; ++phase) {
        std::unordered_map<Addr, bool> &last_check =
            last_check_phase[phase - 1];

        CheckCtx ctx;
        ctx.bodyEpoch = l;
        ctx.bodyThread = t;
        // Lemma 6.3 phase windows: 1st uses wings from epochs l-1..l,
        // 2nd from l..l+1 (phase-one roots persist).
        ctx.wingLo = (phase == 1 && l >= 1) ? l - 1 : l;
        ctx.wingHi = phase == 1 ? l : l + 1;
        ctx.phaseOneRoots = phase == 2 ? &roots : nullptr;
        ctx.counters.assign(blocks_.size(), std::nullopt);

        std::unordered_map<Addr, bool> local_state;
        std::unordered_map<Addr, InstrOffset> local_taint_offset;
        ctx.localState = &local_state;
        ctx.localTaintOffset = &local_taint_offset;

        for (InstrOffset i = 0; i < block.size(); ++i) {
            const Event &e = block.events[i];
            const std::uint64_t index = block.first + i;
            ctx.checkOffset = i;
            switch (e.kind) {
              case EventKind::TaintSrc:
                keys_over(e.addr, e.size, [&](Addr k) {
                    local_state[k] = true;
                    local_taint_offset.try_emplace(k, i);
                    last_check[k] = true;
                    bs.everTainted.insert(k);
                });
                break;
              case EventKind::Untaint:
              case EventKind::Write:
                keys_over(e.addr, e.size, [&](Addr k) {
                    local_state[k] = false;
                    last_check[k] = false;
                });
                break;
              case EventKind::Assign: {
                bool tainted = false;
                const Addr srcs[2] = {e.src0, e.src1};
                ctx.budgetMark = ctx.resolved;
                for (unsigned n = 0; n < e.nsrc && !tainted; ++n)
                    tainted = resolveKey(config_.keyOf(srcs[n]), ctx);
                keys_over(e.addr, e.size, [&](Addr k) {
                    local_state[k] = tainted;
                    if (tainted) {
                        local_taint_offset.try_emplace(k, i);
                        bs.everTainted.insert(k);
                    }
                    last_check[k] = tainted;
                });
                break;
              }
              case EventKind::Use: {
                ctx.budgetMark = ctx.resolved;
                const bool tainted =
                    resolveKey(config_.keyOf(e.addr), ctx);
                if (tainted) {
                    block_errors.push_back(ErrorRecord{
                        t, index, e.addr, ErrorKind::TaintedUse, e.size});
                }
                break;
              }
              default:
                break;
            }
        }

        if (phase == 1) {
            // Roots for phase two (Lemma 6.3 case 3): every key that can
            // appear tainted over epochs l-1..l, with the minimum body
            // offset its derivation requires.
            roots = phaseOneFixpoint(l, t, ctx.wingLo, ctx.wingHi,
                                     local_taint_offset);
        }
        block_resolved += ctx.resolved;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        checksResolved_ += block_resolved;
        for (const ErrorRecord &rec : block_errors)
            errors_.report(rec);
    }

    // LASTCHECK = OR of the two phases' last-write resolutions.
    bs.lastCheck = last_check_phase[0];
    for (const auto &[key, tainted] : last_check_phase[1]) {
        auto [it, inserted] = bs.lastCheck.emplace(key, tainted);
        if (!inserted)
            it->second = it->second || tainted;
    }
}

void
ButterflyTaintCheck::finalizeEpoch(EpochId l)
{
    const std::size_t nthreads = blocks_.size();

    // GEN_l: tainted by some thread's last check.
    AddrSet gen_epoch;
    for (ThreadId t = 0; t < nthreads; ++t) {
        const BlockState *bs = slotIfValid(l, t);
        if (!bs)
            continue;
        for (const auto &[key, tainted] : bs->lastCheck) {
            if (tainted)
                gen_epoch.insert(key);
        }
    }

    // KILL_l: untainted by some thread, with every other thread's last
    // check across epochs l-1..l either untainting or absent.
    auto span_status = [&](Addr key, ThreadId u) -> std::optional<bool> {
        const BlockState *cur = slotIfValid(l, u);
        if (cur) {
            auto it = cur->lastCheck.find(key);
            if (it != cur->lastCheck.end())
                return it->second;
        }
        if (l >= 1) {
            const BlockState *prev = slotIfValid(l - 1, u);
            if (prev) {
                auto it = prev->lastCheck.find(key);
                if (it != prev->lastCheck.end())
                    return it->second;
            }
        }
        return std::nullopt;
    };

    AddrSet kill_epoch;
    for (ThreadId t = 0; t < nthreads; ++t) {
        const BlockState *bs = slotIfValid(l, t);
        if (!bs)
            continue;
        for (const auto &[key, tainted] : bs->lastCheck) {
            if (tainted)
                continue;
            bool all_others = true;
            for (ThreadId u = 0; u < nthreads; ++u) {
                if (u == t)
                    continue;
                const auto status = span_status(key, u);
                if (status && *status) {
                    all_others = false;
                    break;
                }
            }
            if (all_others)
                kill_epoch.insert(key);
        }
    }

    // Advance the SOS (reaching-definitions update rule).
    sosPrev_ = sosCur_;
    sosCur_.subtract(kill_epoch);
    sosCur_.unionWith(gen_epoch);

    if (telemetry::enabled()) {
        const TaintCheckTelemetry &m = TaintCheckTelemetry::get();
        auto &reg = telemetry::registry();
        reg.add(m.epochsFinalized);
        reg.set(m.sosSize, sosCur_.size());
        reg.observe(m.epochGenKill,
                    gen_epoch.size() + kill_epoch.size());
    }
}

} // namespace bfly
