/**
 * @file
 * ADDRLEAK: a pointer-value leak lifeguard built as a butterfly
 * taint analysis over heap addresses. An allocation site *taints* the
 * cell that receives the returned pointer; assignments propagate the
 * taint cell-to-cell; overwriting a cell with non-pointer data kills
 * it; and an Output event (the trace model's LOG/SEND sink) on a
 * still-tainted cell is a leak of an internal heap address to the
 * outside world — the classic infoleak bug class (heap-layout
 * disclosure defeating ASLR).
 *
 * The butterfly structure mirrors TAINTCHECK's "may" direction:
 *
 *  - pass 1 records each block's rewrite rules (gen at allocation,
 *    copy at assignment, kill at overwrite) and its Output checks —
 *    purely local, no metadata reads;
 *  - pass 2 resolves each check conservatively: the window may-set
 *    WM_l (everything that *might* be tainted given the SOS plus any
 *    rule in epochs l-1..l+1, closed under copies) feeds a per-check
 *    resolution that walks the thread's own preceding rules exactly
 *    and admits wing interference in between — "may be tainted" under
 *    *some* interleaving of the window flags the sink;
 *  - finalizeEpoch folds the epoch into the SOS with may-gen (each
 *    thread's LAST rule per cell, judged under WM — the epoch-final
 *    write is always some thread's last rule, and folding anything
 *    more keeps same-epoch gen-then-kill cells alive forever, which
 *    inverts FP(H) <= FP(4H)) and must-kill (every thread that wrote
 *    the cell ended on a kill).
 *
 * Zero false negatives: a true leak has a gen/copy chain to the sink
 * in the real interleaving; every link is either >= 2 epochs old
 * (hence folded into the SOS by the may-gen rule) or inside the
 * sink's window (hence in WM_l / the wing scan). False positives are
 * the usual butterfly over-approximation — chains that no real
 * interleaving executes — and shrink monotonically with the epoch
 * size, which the fuzzer's FpMonotonicity invariant checks.
 *
 * Like TAINTCHECK this driver is strict (finalizeAfterPass2() ==
 * true): pass 2 reads the SOS snapshot finalizeEpoch advances. Unlike
 * TAINTCHECK, the WM_l fixpoint pass 2 computes folds epoch l+1 rules
 * of EVERY thread — the body thread included — so the driver also
 * declares pass2ReadsOwnNextPass1() and the pipelined schedule orders
 * P2(l,t) after P1(l+1,t) instead of letting them overlap.
 */

#ifndef BUTTERFLY_LIFEGUARDS_ADDRLEAK_HPP
#define BUTTERFLY_LIFEGUARDS_ADDRLEAK_HPP

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "butterfly/window.hpp"
#include "common/addr_set.hpp"
#include "lifeguards/report.hpp"
#include "trace/trace.hpp"

namespace bfly {

/** Configuration shared by the butterfly lifeguard and the oracle. */
struct AddrLeakConfig
{
    /** Pointer-cell granularity (a stored pointer taints one cell). */
    unsigned granularity = 4;
    /** Cells tracked for pointer values; everything else is untainted. */
    Addr heapBase = 0;
    Addr heapLimit = kNoAddr;

    Addr keyOf(Addr addr) const { return addr / granularity; }

    bool
    monitored(Addr addr) const
    {
        return addr >= heapBase && addr < heapLimit;
    }
};

/** Butterfly-analysis ADDRLEAK. Drive with WindowSchedule. */
class ButterflyAddrLeak : public AnalysisDriver
{
  public:
    /** Streaming-friendly: the driver only needs the thread count, so it
     *  can run over an EpochStream without materializing a layout. */
    ButterflyAddrLeak(std::size_t num_threads, const AddrLeakConfig &config);
    ButterflyAddrLeak(const EpochLayout &layout, const AddrLeakConfig &config)
        : ButterflyAddrLeak(layout.numThreads(), config)
    {}

    // AnalysisDriver hooks.
    void pass1(const BlockView &block) override;
    void pass2(const BlockView &block) override;
    void finalizeEpoch(EpochId l) override;
    bool pass2ReadsOwnNextPass1() const override { return true; }

    const ErrorLog &errors() const { return errors_; }

    /** SOS after the last finalized epoch: cells that may hold a heap
     *  pointer (for the differential runner's state fingerprint). */
    const AddrSet &sosNow() const { return sosCur_; }

    /** Output sinks resolved (cost-model feed). */
    std::uint64_t checksResolved() const { return checks_; }

  private:
    static constexpr std::size_t kWindow = 4; ///< ring depth (epochs)

    enum class RuleKind : std::uint8_t { Gen, Kill, Copy };

    /** One shadow-cell rewrite in program order. */
    struct Rule
    {
        InstrOffset offset = 0;
        Addr dst = 0;
        std::array<Addr, 2> src{};
        std::uint8_t nsrc = 0;
        RuleKind kind = RuleKind::Kill;
    };

    /** One Output sink to resolve in pass 2. */
    struct Check
    {
        InstrOffset offset = 0;
        Addr addr = kNoAddr; ///< raw sink address (report attribution)
        Addr key = 0;
        std::uint16_t size = 0;
    };

    /** Per-block pass-1 summary. */
    struct BlockState
    {
        std::vector<Rule> rules;   ///< ascending by offset
        std::vector<Check> checks; ///< ascending by offset
        /** dst key -> ascending indices into rules (last = final write). */
        std::unordered_map<Addr, std::vector<std::size_t>> rulesByKey;
        EpochId epoch = kNoEpoch;
    };

    BlockState &slotRef(EpochId l, ThreadId t);
    const BlockState *slotIfValid(EpochId l, ThreadId t) const;

    /** True if @p rule may taint its destination given window may-set
     *  @p wm (gen always; copy iff some source may be tainted). */
    bool mayTaint(const Rule &rule, const AddrSet &wm) const;

    /** Compute WM_l (idempotent; any pass-2 block of epoch l or the
     *  finalize may be first to need it). */
    const AddrSet &ensureWindowMay(EpochId l);

    AddrLeakConfig config_;

    std::vector<std::array<BlockState, kWindow>> states_; ///< [t]

    /** Single-slot window may-set cache, keyed by epoch. */
    AddrSet windowMay_;
    EpochId windowMayEpoch_ = kNoEpoch;
    std::mutex wmMutex_;

    /** SOS double buffer: sosPrev_ = SOS_l while epoch l is in pass 2,
     *  sosCur_ = SOS_{l+1} (the TAINTCHECK idiom). */
    AddrSet sosPrev_;
    AddrSet sosCur_;

    std::mutex mutex_; ///< guards errors_ / checks_ commits from pass 2
    ErrorLog errors_;
    std::uint64_t checks_ = 0;
};

/** Exact sequential leak oracle over the true (gseq) interleaving. */
class AddrLeakOracle
{
  public:
    explicit AddrLeakOracle(const AddrLeakConfig &config);

    void runOnTrace(const Trace &trace);
    void processOne(ThreadId tid, std::uint64_t index, const Event &e);

    const ErrorLog &errors() const { return errors_; }

    /** Cells holding a heap pointer after the replayed prefix. */
    const AddrSet &tainted() const { return tainted_; }

  private:
    AddrLeakConfig config_;
    AddrSet tainted_;
    ErrorLog errors_;
};

} // namespace bfly

#endif // BUTTERFLY_LIFEGUARDS_ADDRLEAK_HPP
