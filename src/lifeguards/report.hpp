/**
 * @file
 * Error reporting shared by every lifeguard, plus the false-positive /
 * false-negative accounting used throughout the evaluation.
 *
 * An error is attributed to the *event* that triggered it, identified by
 * (thread id, per-thread instruction index). The same identity is produced
 * by the butterfly lifeguards (via EpochLayout::globalIndex) and by the
 * oracles (by counting events while replaying), so reports from the two
 * sides can be diffed exactly:
 *
 *   false positive = flagged by the monitored lifeguard, not by the oracle
 *   false negative = flagged by the oracle, missed by the lifeguard
 *                    (provably empty for butterfly analysis)
 */

#ifndef BUTTERFLY_LIFEGUARDS_REPORT_HPP
#define BUTTERFLY_LIFEGUARDS_REPORT_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace bfly {

/** What went wrong. */
enum class ErrorKind : std::uint8_t {
    UnallocatedAccess, ///< load/store to memory not known to be allocated
    UnallocatedFree,   ///< free of memory not known to be allocated
    DoubleAlloc,       ///< allocation of memory that appears allocated
    NonIsolatedOp,     ///< alloc/free/access racing with a concurrent
                       ///< alloc/free in the wings (metadata race)
    TaintedUse,        ///< tainted value used in a critical way
    UninitializedRead, ///< read of memory never written (DEFINEDCHECK)
    DataRace,          ///< access with an empty candidate lockset (LOCKSET)
    AddrLeak,          ///< heap pointer value reaches an output sink
};

const char *errorKindName(ErrorKind kind);

/** One flagged event. */
struct ErrorRecord
{
    ThreadId tid = 0;
    std::uint64_t index = 0; ///< per-thread instruction index
    Addr addr = kNoAddr;
    ErrorKind kind = ErrorKind::UnallocatedAccess;
    std::uint16_t size = 1; ///< bytes covered by the flagged operation

    /** Identity key: which *event* was flagged (kind-insensitive). */
    std::uint64_t
    key() const
    {
        return (static_cast<std::uint64_t>(tid) << 48) ^ index;
    }

    std::string toString() const;
};

/** Collects error reports; at most one per event identity. */
class ErrorLog
{
  public:
    /**
     * Report an error; duplicates of the same event are coalesced.
     * @return true if this event was not already flagged
     */
    bool
    report(ThreadId tid, std::uint64_t index, Addr addr, ErrorKind kind,
           std::uint16_t size = 1)
    {
        return report(ErrorRecord{tid, index, addr, kind, size});
    }

    bool
    report(const ErrorRecord &rec)
    {
        auto [it, inserted] = byKey_.emplace(rec.key(), records_.size());
        if (inserted)
            records_.push_back(rec);
        return inserted;
    }

    bool
    flagged(ThreadId tid, std::uint64_t index) const
    {
        return byKey_.count(ErrorRecord{tid, index, 0,
                                        ErrorKind::UnallocatedAccess}
                                .key()) != 0;
    }

    const std::vector<ErrorRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    void clear() { records_.clear(); byKey_.clear(); }

  private:
    std::vector<ErrorRecord> records_;
    std::unordered_map<std::uint64_t, std::size_t> byKey_;
};

/**
 * Diff of a monitored lifeguard's log against the oracle's.
 *
 * False positives are event-exact (the Fig. 13 metric counts flagged
 * events). False negatives honour the actual guarantee of Theorems
 * 6.1/6.2: the butterfly lifeguard flags *an* error for every true error,
 * but may attribute it to a different instruction of the same race (e.g.
 * the concurrent alloc rather than the access). An oracle error therefore
 * only counts as missed if no monitored record touches an overlapping
 * metadata key either.
 */
struct AccuracyReport
{
    std::size_t truePositives = 0;
    std::size_t falsePositives = 0;
    std::size_t falseNegatives = 0;

    /** Fig. 13 metric: false positives as a fraction of memory accesses. */
    double
    falsePositiveRate(std::size_t memory_accesses) const
    {
        if (memory_accesses == 0)
            return 0.0;
        return static_cast<double>(falsePositives) /
               static_cast<double>(memory_accesses);
    }
};

/**
 * Compare a lifeguard's error log against the oracle's.
 * @param granularity  metadata granularity used for key-overlap matching
 */
AccuracyReport compareToOracle(const ErrorLog &monitored,
                               const ErrorLog &oracle,
                               unsigned granularity = 8);

} // namespace bfly

#endif // BUTTERFLY_LIFEGUARDS_REPORT_HPP
