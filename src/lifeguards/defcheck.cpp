#include "lifeguards/defcheck.hpp"

#include <algorithm>

namespace bfly {

namespace {

/** Keys of [base, base+size) that fall inside the monitored window. */
void
keysOf(const DefCheckConfig &cfg, Addr base, std::uint16_t size,
       std::vector<Addr> &out)
{
    out.clear();
    if (base == kNoAddr || !cfg.monitored(base))
        return;
    const Addr first = cfg.keyOf(base);
    const Addr last = cfg.keyOf(base + (size > 0 ? size - 1 : 0));
    for (Addr k = first; k <= last; ++k)
        out.push_back(k);
}

/** The reaching-expressions instantiation: "key holds defined data". */
ExprExtractor
definedness(const DefCheckConfig &cfg)
{
    return [cfg](const Event &e) {
        ExprEffect eff;
        std::vector<Addr> keys;
        switch (e.kind) {
          case EventKind::Write:
          case EventKind::Assign:
          case EventKind::TaintSrc:
          case EventKind::Untaint:
            keysOf(cfg, e.addr, e.size, keys);
            eff.gens.assign(keys.begin(), keys.end());
            break;
          case EventKind::Alloc: // fresh memory holds garbage
          case EventKind::Free:
            keysOf(cfg, e.addr, e.size, keys);
            eff.kills.assign(keys.begin(), keys.end());
            break;
          default:
            break;
        }
        return eff;
    };
}

} // namespace

ButterflyDefCheck::ButterflyDefCheck(std::size_t num_threads,
                                     const DefCheckConfig &config)
    : config_(config), exprs_(num_threads, definedness(config))
{}

void
ButterflyDefCheck::pass1(const BlockView &block)
{
    exprs_.pass1(block);
}

void
ButterflyDefCheck::beginPass(EpochId l, bool second)
{
    exprs_.beginPass(l, second);
}

void
ButterflyDefCheck::pass2(const BlockView &block)
{
    exprs_.pass2(block);

    // The check layer: every read must find its keys defined along all
    // paths — membership in the generic analysis's IN_{l,t,i}.
    const EpochId l = block.epoch;
    const ThreadId t = block.thread;
    // Pass-2 blocks run concurrently; buffer reports and commit once.
    std::vector<ErrorRecord> block_errors;
    std::vector<Addr> keys;
    for (InstrOffset i = 0; i < block.size(); ++i) {
        const Event &e = block.events[i];
        Addr read_addrs[3] = {kNoAddr, kNoAddr, kNoAddr};
        std::uint16_t size = e.size;
        switch (e.kind) {
          case EventKind::Read:
          case EventKind::Use:
            read_addrs[0] = e.addr;
            break;
          case EventKind::Assign:
            if (e.nsrc >= 1)
                read_addrs[0] = e.src0;
            if (e.nsrc >= 2)
                read_addrs[1] = e.src1;
            break;
          default:
            continue;
        }
        const ExprSet in = exprs_.inAt(l, t, i);
        for (Addr base : read_addrs) {
            if (base == kNoAddr)
                continue;
            keysOf(config_, base, size, keys);
            for (Addr k : keys) {
                if (!in.contains(k)) {
                    block_errors.push_back(ErrorRecord{
                        t, block.first + i, base,
                        ErrorKind::UninitializedRead, size});
                    break;
                }
            }
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    for (const ErrorRecord &rec : block_errors)
        errors_.report(rec);
}

void
ButterflyDefCheck::finalizeEpoch(EpochId l)
{
    exprs_.finalizeEpoch(l);
}

DefCheckOracle::DefCheckOracle(const DefCheckConfig &config)
    : config_(config)
{}

void
DefCheckOracle::processOne(ThreadId tid, std::uint64_t index,
                           const Event &e)
{
    std::vector<Addr> keys;
    auto set_range = [&](Addr base, std::uint16_t size,
                         std::uint8_t v) {
        keysOf(config_, base, size, keys);
        for (Addr k : keys)
            defined_.set(k, v);
    };
    auto check_range = [&](Addr base, std::uint16_t size) {
        keysOf(config_, base, size, keys);
        for (Addr k : keys) {
            if (defined_.get(k) == 0) {
                errors_.report(tid, index, base,
                               ErrorKind::UninitializedRead, size);
                return;
            }
        }
    };

    switch (e.kind) {
      case EventKind::Write:
      case EventKind::TaintSrc:
      case EventKind::Untaint:
        set_range(e.addr, e.size, 1);
        break;
      case EventKind::Assign: {
        const Addr srcs[2] = {e.src0, e.src1};
        for (unsigned n = 0; n < e.nsrc; ++n)
            check_range(srcs[n], e.size);
        set_range(e.addr, e.size, 1);
        break;
      }
      case EventKind::Alloc:
      case EventKind::Free:
        set_range(e.addr, e.size, 0);
        break;
      case EventKind::Read:
      case EventKind::Use:
        check_range(e.addr, e.size);
        break;
      default:
        break;
    }
}

void
DefCheckOracle::runOnTrace(const Trace &trace)
{
    struct IndexedEvent
    {
        std::uint64_t gseq;
        ThreadId tid;
        std::uint64_t index;
        const Event *e;
    };
    std::vector<IndexedEvent> merged;
    merged.reserve(trace.instructionCount());
    for (const ThreadTrace &tt : trace.threads) {
        std::uint64_t index = 0;
        for (const Event &e : tt.events) {
            if (e.kind == EventKind::Heartbeat)
                continue;
            merged.push_back(IndexedEvent{e.gseq, tt.tid, index, &e});
            ++index;
        }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const IndexedEvent &a, const IndexedEvent &b) {
                         return a.gseq < b.gseq;
                     });
    for (const IndexedEvent &ie : merged)
        processOne(ie.tid, ie.index, *ie.e);
}

} // namespace bfly
