/**
 * @file
 * Exact sequential ADDRCHECK over a serialized execution order.
 *
 * Two roles:
 *  - *oracle*: replay the true interleaving (events sorted by their global
 *    visibility sequence) and produce the ground-truth error set for
 *    false-positive / false-negative accounting;
 *  - *timesliced baseline*: the same sequential checker fed the round-robin
 *    merge a timesliced monitor would see (the paper's state of the art).
 */

#ifndef BUTTERFLY_LIFEGUARDS_ADDRCHECK_ORACLE_HPP
#define BUTTERFLY_LIFEGUARDS_ADDRCHECK_ORACLE_HPP

#include "common/shadow_memory.hpp"
#include "lifeguards/addrcheck.hpp"
#include "trace/trace.hpp"

namespace bfly {

/** Sequential, exact ADDRCHECK. */
class AddrCheckOracle
{
  public:
    explicit AddrCheckOracle(const AddrCheckConfig &config);

    /**
     * Replay the trace in true execution order (by gseq), attributing
     * errors to (thread, per-thread program index).
     */
    void runOnTrace(const Trace &trace);

    /**
     * Replay an explicit serialized order of (tid, per-thread index,
     * event) triples; used for the timesliced baseline and tests.
     */
    void processOne(ThreadId tid, std::uint64_t index, const Event &e);

    const ErrorLog &errors() const { return errors_; }

    /** Number of metadata checks performed (cost-model feed). */
    std::uint64_t eventsChecked() const { return eventsChecked_; }

  private:
    void checkKeys(ThreadId tid, std::uint64_t index, Addr base,
                   std::uint16_t size, bool want_allocated,
                   ErrorKind kind_if_bad);

    AddrCheckConfig config_;
    ShadowMemory<std::uint8_t> allocated_{0};
    ErrorLog errors_;
    std::uint64_t eventsChecked_ = 0;
};

} // namespace bfly

#endif // BUTTERFLY_LIFEGUARDS_ADDRCHECK_ORACLE_HPP
