#include "lifeguards/addrcheck.hpp"

#include "common/logging.hpp"
#include "telemetry/metrics.hpp"

namespace bfly {

namespace {

/** Pre-interned ADDRCHECK metric ids (one-time registration). */
struct AddrCheckTelemetry
{
    telemetry::MetricId eventsChecked;
    telemetry::MetricId isolationViolations;
    telemetry::MetricId errorsFlagged;
    telemetry::MetricId blocksCommitted;
    telemetry::MetricId summarySize; ///< histogram, per pass-1 block
    telemetry::MetricId sosSize;     ///< gauge, keys in the SOS

    static const AddrCheckTelemetry &
    get()
    {
        static const AddrCheckTelemetry m = [] {
            auto &r = telemetry::registry();
            AddrCheckTelemetry s;
            s.eventsChecked = r.counter("bfly.addrcheck.events_checked");
            s.isolationViolations =
                r.counter("bfly.addrcheck.isolation_violations");
            s.errorsFlagged = r.counter("bfly.addrcheck.errors_flagged");
            s.blocksCommitted =
                r.counter("bfly.addrcheck.blocks_committed");
            s.summarySize = r.histogram("bfly.addrcheck.summary_size");
            s.sosSize = r.gauge("bfly.addrcheck.sos_size");
            return s;
        }();
        return m;
    }
};

} // namespace

ButterflyAddrCheck::ButterflyAddrCheck(std::size_t num_threads,
                                       const AddrCheckConfig &config)
    : config_(config), summaries_(num_threads)
{
    ensure(config_.granularity > 0, "granularity must be positive");
}

ButterflyAddrCheck::BlockSummary &
ButterflyAddrCheck::slot(EpochId l, ThreadId t)
{
    return summaries_[t][l % kWindow];
}

const ButterflyAddrCheck::BlockSummary *
ButterflyAddrCheck::slotIfValid(EpochId l, ThreadId t) const
{
    const BlockSummary &s = summaries_[t][l % kWindow];
    return s.epoch == l ? &s : nullptr;
}

void
ButterflyAddrCheck::keysOf(Addr base, std::uint16_t size,
                           std::vector<Addr> &out) const
{
    out.clear();
    if (base == kNoAddr || !config_.monitored(base))
        return;
    const Addr first = config_.keyOf(base);
    const Addr last = config_.keyOf(base + (size > 0 ? size - 1 : 0));
    for (Addr k = first; k <= last; ++k)
        out.push_back(k);
}

bool
ButterflyAddrCheck::lsosBaseContains(Addr key, EpochId l, ThreadId t) const
{
    // LSOS_{l,t} = (GEN_{l-1,t} - U_{t'!=t} KILL_{l-2,t'})
    //              U (SOS_l - KILL_{l-1,t})         [Section 5.2 / 6.1]
    const BlockSummary *head =
        l >= 1 ? slotIfValid(l - 1, t) : nullptr;

    if (head && head->genEnd.contains(key)) {
        bool killed_by_l2 = false;
        if (l >= 2) {
            for (ThreadId u = 0; u < summaries_.size() && !killed_by_l2;
                 ++u) {
                if (u == t)
                    continue;
                const BlockSummary *w = slotIfValid(l - 2, u);
                if (w && w->killEnd.contains(key))
                    killed_by_l2 = true;
            }
        }
        if (!killed_by_l2)
            return true;
    }
    if (sos_.contains(key)) {
        if (!head || !head->killEnd.contains(key))
            return true;
    }
    return false;
}

void
ButterflyAddrCheck::commitBlock(EpochId l, ThreadId t,
                                const std::vector<ErrorRecord> &local,
                                std::uint64_t checks,
                                std::uint64_t isolation)
{
    if (telemetry::enabled()) {
        // Per-block flush of the hot-path tallies (never per event).
        const AddrCheckTelemetry &m = AddrCheckTelemetry::get();
        auto &reg = telemetry::registry();
        reg.add(m.eventsChecked, checks);
        reg.add(m.isolationViolations, isolation);
        reg.add(m.errorsFlagged, local.size());
        reg.add(m.blocksCommitted);
    }
    std::lock_guard<std::mutex> guard(mutex_);
    for (const ErrorRecord &rec : local) {
        if (errors_.report(rec))
            ++errorsPerBlock_[blockKey(l, t)];
    }
    eventsChecked_ += checks;
    isolationViol_ += isolation;
}

void
ButterflyAddrCheck::pass1(const BlockView &block)
{
    const EpochId l = block.epoch;
    const ThreadId t = block.thread;
    BlockSummary &s = slot(l, t);
    s = BlockSummary{};
    s.epoch = l;

    std::vector<ErrorRecord> local_errors;
    std::uint64_t checks = 0;

    // Local allocation-state delta on top of the LSOS (key -> allocated?).
    std::unordered_map<Addr, bool> delta;
    auto contains = [&](Addr key) {
        auto it = delta.find(key);
        if (it != delta.end())
            return it->second;
        return lsosBaseContains(key, l, t);
    };
    auto flag = [&](std::uint64_t index, Addr addr, std::uint16_t size,
                    ErrorKind kind) {
        local_errors.push_back(ErrorRecord{t, index, addr, kind, size});
    };

    std::vector<Addr> keys;
    for (InstrOffset i = 0; i < block.size(); ++i) {
        const Event &e = block.events[i];
        const std::uint64_t index = block.first + i;

        auto check_access = [&](Addr base, std::uint16_t size) {
            keysOf(base, size, keys);
            for (Addr k : keys) {
                ++checks;
                if (!contains(k))
                    flag(index, base, size,
                         ErrorKind::UnallocatedAccess);
                s.access.insert(k);
            }
        };

        switch (e.kind) {
          case EventKind::Alloc:
            keysOf(e.addr, e.size, keys);
            for (Addr k : keys) {
                ++checks;
                if (contains(k))
                    flag(index, e.addr, e.size, ErrorKind::DoubleAlloc);
                delta[k] = true;
                s.allocAny.insert(k);
                s.genEnd.insert(k);
                s.killEnd.erase(k);
            }
            break;

          case EventKind::Free:
            keysOf(e.addr, e.size, keys);
            for (Addr k : keys) {
                ++checks;
                if (!contains(k))
                    flag(index, e.addr, e.size,
                         ErrorKind::UnallocatedFree);
                delta[k] = false;
                s.freeAny.insert(k);
                s.killEnd.insert(k);
                s.genEnd.erase(k);
            }
            break;

          case EventKind::Read:
          case EventKind::Write:
          case EventKind::Use:
            check_access(e.addr, e.size);
            break;

          case EventKind::Assign: {
            check_access(e.addr, e.size);
            const Addr srcs[2] = {e.src0, e.src1};
            for (unsigned n = 0; n < e.nsrc; ++n)
                check_access(srcs[n], e.size);
            break;
          }

          default:
            break;
        }
    }

    {
        std::lock_guard<std::mutex> guard(mutex_);
        summarySizes_[blockKey(l, t)] =
            s.genEnd.size() + s.killEnd.size() + s.access.size();
    }
    if (telemetry::enabled()) {
        const AddrCheckTelemetry &m = AddrCheckTelemetry::get();
        telemetry::registry().observe(m.summarySize,
                                      s.genEnd.size() + s.killEnd.size() +
                                          s.access.size());
    }
    commitBlock(l, t, local_errors, checks, 0);
}

void
ButterflyAddrCheck::pass2(const BlockView &block)
{
    const EpochId l = block.epoch;
    const ThreadId t = block.thread;

    // Meet the wing summaries S_{l,t} (epochs l-1..l+1, threads != t).
    AddrSet wing_genkill;
    AddrSet wing_access;
    const EpochId lo = l >= 1 ? l - 1 : 0;
    for (EpochId w = lo; w <= l + 1; ++w) {
        for (ThreadId u = 0; u < summaries_.size(); ++u) {
            if (u == t)
                continue;
            const BlockSummary *s = slotIfValid(w, u);
            if (!s)
                continue;
            wing_genkill.unionWith(s->allocAny);
            wing_genkill.unionWith(s->freeAny);
            wing_access.unionWith(s->access);
        }
    }

    std::vector<ErrorRecord> local_errors;
    std::uint64_t isolation = 0;

    // Isolation check (Section 6.1): a body alloc/free conflicts with any
    // concurrent alloc/free/access of the same key; a body access
    // conflicts with any concurrent alloc/free of its key.
    std::vector<Addr> keys;
    for (InstrOffset i = 0; i < block.size(); ++i) {
        const Event &e = block.events[i];
        const std::uint64_t index = block.first + i;

        auto check_state_change = [&](Addr base, std::uint16_t size) {
            keysOf(base, size, keys);
            for (Addr k : keys) {
                if (wing_genkill.contains(k) || wing_access.contains(k)) {
                    local_errors.push_back(ErrorRecord{
                        t, index, base, ErrorKind::NonIsolatedOp, size});
                    ++isolation;
                    return;
                }
            }
        };
        auto check_access = [&](Addr base, std::uint16_t size) {
            keysOf(base, size, keys);
            for (Addr k : keys) {
                if (wing_genkill.contains(k)) {
                    local_errors.push_back(ErrorRecord{
                        t, index, base, ErrorKind::NonIsolatedOp, size});
                    ++isolation;
                    return;
                }
            }
        };

        switch (e.kind) {
          case EventKind::Alloc:
          case EventKind::Free:
            check_state_change(e.addr, e.size);
            break;
          case EventKind::Read:
          case EventKind::Write:
          case EventKind::Use:
            check_access(e.addr, e.size);
            break;
          case EventKind::Assign: {
            check_access(e.addr, e.size);
            const Addr srcs[2] = {e.src0, e.src1};
            for (unsigned n = 0; n < e.nsrc; ++n)
                check_access(srcs[n], e.size);
            break;
          }
          default:
            break;
        }
    }

    commitBlock(l, t, local_errors, 0, isolation);
}

void
ButterflyAddrCheck::finalizeEpoch(EpochId l)
{
    const std::size_t nthreads = summaries_.size();

    // KILL_l = U_t KILL_{l,t}
    AddrSet kill_epoch;
    for (ThreadId t = 0; t < nthreads; ++t) {
        if (const BlockSummary *s = slotIfValid(l, t))
            kill_epoch.unionWith(s->killEnd);
    }

    // GEN_l: allocated by some thread, and every other thread
    // allocates-or-never-frees it across epochs l-1..l (Section 5.2).
    auto gen_span = [&](Addr key, ThreadId u) {
        const BlockSummary *cur = slotIfValid(l, u);
        if (cur && cur->genEnd.contains(key))
            return true;
        if (l >= 1) {
            const BlockSummary *prev = slotIfValid(l - 1, u);
            if (prev && prev->genEnd.contains(key) &&
                !(cur && cur->killEnd.contains(key))) {
                return true;
            }
        }
        return false;
    };
    auto not_kill_span = [&](Addr key, ThreadId u) {
        if (l >= 1) {
            const BlockSummary *prev = slotIfValid(l - 1, u);
            if (prev && prev->killEnd.contains(key))
                return false;
        }
        const BlockSummary *cur = slotIfValid(l, u);
        if (cur && cur->killEnd.contains(key))
            return false;
        return true;
    };

    AddrSet gen_epoch;
    for (ThreadId t = 0; t < nthreads; ++t) {
        const BlockSummary *s = slotIfValid(l, t);
        if (!s)
            continue;
        for (Addr key : s->genEnd) {
            bool all_others = true;
            for (ThreadId u = 0; u < nthreads; ++u) {
                if (u == t)
                    continue;
                if (!gen_span(key, u) && !not_kill_span(key, u)) {
                    all_others = false;
                    break;
                }
            }
            if (all_others)
                gen_epoch.insert(key);
        }
    }

    sosWork_[l] = gen_epoch.size() + kill_epoch.size();

    // Single-writer SOS advance: SOS_{l+2} = GEN_l U (SOS_{l+1} - KILL_l).
    sos_.subtract(kill_epoch);
    sos_.unionWith(gen_epoch);

    if (telemetry::enabled()) {
        telemetry::registry().set(AddrCheckTelemetry::get().sosSize,
                                  sos_.size());
    }
}

std::uint64_t
ButterflyAddrCheck::errorsInBlock(EpochId l, ThreadId t) const
{
    auto it = errorsPerBlock_.find(blockKey(l, t));
    return it == errorsPerBlock_.end() ? 0 : it->second;
}

std::uint64_t
ButterflyAddrCheck::summarySize(EpochId l, ThreadId t) const
{
    auto it = summarySizes_.find(blockKey(l, t));
    return it == summarySizes_.end() ? 0 : it->second;
}

std::uint64_t
ButterflyAddrCheck::sosUpdateWork(EpochId l) const
{
    auto it = sosWork_.find(l);
    return it == sosWork_.end() ? 0 : it->second;
}

} // namespace bfly
