#include "lifeguards/addrcheck.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "telemetry/metrics.hpp"
#include "trace/block_batch.hpp"

namespace bfly {

namespace {

/** Pre-interned ADDRCHECK metric ids (one-time registration). */
struct AddrCheckTelemetry
{
    telemetry::MetricId eventsChecked;
    telemetry::MetricId isolationViolations;
    telemetry::MetricId errorsFlagged;
    telemetry::MetricId blocksCommitted;
    telemetry::MetricId summarySize; ///< histogram, per pass-1 block
    telemetry::MetricId sosSize;     ///< gauge, keys in the SOS

    static const AddrCheckTelemetry &
    get()
    {
        static const AddrCheckTelemetry m = [] {
            auto &r = telemetry::registry();
            AddrCheckTelemetry s;
            s.eventsChecked = r.counter("bfly.addrcheck.events_checked");
            s.isolationViolations =
                r.counter("bfly.addrcheck.isolation_violations");
            s.errorsFlagged = r.counter("bfly.addrcheck.errors_flagged");
            s.blocksCommitted =
                r.counter("bfly.addrcheck.blocks_committed");
            s.summarySize = r.histogram("bfly.addrcheck.summary_size");
            s.sosSize = r.gauge("bfly.addrcheck.sos_size");
            return s;
        }();
        return m;
    }
};

/** One (event, metadata-key) expansion in the batched pass-1 kernel.
 *  Ops live in a flat vector in scalar expansion order, so an op's
 *  vector index doubles as its emission ordinal. */
struct KeyOp
{
    Addr key;           ///< metadata key this op touches
    Addr base;          ///< address reported if the op is flagged
    std::uint32_t evt;  ///< event offset within the block
    std::uint16_t size; ///< bytes reported if flagged
    std::uint8_t op;    ///< 0 access, 1 alloc, 2 free
};

/** Reusable per-worker buffers for the batched kernel. */
struct AddrBatchScratch
{
    BlockBatch batch;
    std::vector<KeyOp> ops;            ///< expansion (= emission) order
    std::vector<std::uint32_t> counts; ///< groupByKey bucket scratch
    std::vector<std::uint32_t> order;  ///< op indices grouped by key
    std::vector<Addr> accessKeys;
    std::vector<Addr> allocKeys;
    std::vector<Addr> freeKeys;
    std::vector<Addr> genKeys;
    std::vector<Addr> killKeys;
    std::vector<std::pair<std::uint32_t, ErrorRecord>> flagged;
};

AddrBatchScratch &
addrBatchScratch()
{
    thread_local AddrBatchScratch s;
    return s;
}

} // namespace

ButterflyAddrCheck::ButterflyAddrCheck(std::size_t num_threads,
                                       const AddrCheckConfig &config)
    : config_(config), summaries_(num_threads)
{
    ensure(config_.granularity > 0, "granularity must be positive");
}

ButterflyAddrCheck::BlockSummary &
ButterflyAddrCheck::slot(EpochId l, ThreadId t)
{
    return summaries_[t][l % kWindow];
}

const ButterflyAddrCheck::BlockSummary *
ButterflyAddrCheck::slotIfValid(EpochId l, ThreadId t) const
{
    const BlockSummary &s = summaries_[t][l % kWindow];
    return s.epoch == l ? &s : nullptr;
}

void
ButterflyAddrCheck::keysOf(Addr base, std::uint16_t size,
                           std::vector<Addr> &out) const
{
    out.clear();
    if (base == kNoAddr || !config_.monitored(base))
        return;
    const Addr first = config_.keyOf(base);
    const Addr last = config_.keyOf(base + (size > 0 ? size - 1 : 0));
    for (Addr k = first; k <= last; ++k)
        out.push_back(k);
}

bool
ButterflyAddrCheck::lsosBaseContains(Addr key, EpochId l, ThreadId t) const
{
    // LSOS_{l,t} = (GEN_{l-1,t} - U_{t'!=t} KILL_{l-2,t'})
    //              U (SOS_l - KILL_{l-1,t})         [Section 5.2 / 6.1]
    const BlockSummary *head =
        l >= 1 ? slotIfValid(l - 1, t) : nullptr;

    if (head && head->genEnd.contains(key)) {
        bool killed_by_l2 = false;
        if (l >= 2) {
            for (ThreadId u = 0; u < summaries_.size() && !killed_by_l2;
                 ++u) {
                if (u == t)
                    continue;
                const BlockSummary *w = slotIfValid(l - 2, u);
                if (w && w->killEnd.contains(key))
                    killed_by_l2 = true;
            }
        }
        if (!killed_by_l2)
            return true;
    }
    if (sos_.contains(key)) {
        if (!head || !head->killEnd.contains(key))
            return true;
    }
    return false;
}

void
ButterflyAddrCheck::commitBlock(EpochId l, ThreadId t,
                                const std::vector<ErrorRecord> &local,
                                std::uint64_t checks,
                                std::uint64_t isolation)
{
    if (telemetry::enabled()) {
        // Per-block flush of the hot-path tallies (never per event).
        const AddrCheckTelemetry &m = AddrCheckTelemetry::get();
        auto &reg = telemetry::registry();
        reg.add(m.eventsChecked, checks);
        reg.add(m.isolationViolations, isolation);
        reg.add(m.errorsFlagged, local.size());
        reg.add(m.blocksCommitted);
    }
    std::lock_guard<std::mutex> guard(mutex_);
    for (const ErrorRecord &rec : local) {
        if (errors_.report(rec))
            ++errorsPerBlock_[blockKey(l, t)];
    }
    eventsChecked_ += checks;
    isolationViol_ += isolation;
}

void
ButterflyAddrCheck::finishPass1(EpochId l, ThreadId t,
                                const BlockSummary &s,
                                const std::vector<ErrorRecord> &local_errors,
                                std::uint64_t checks)
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        summarySizes_[blockKey(l, t)] =
            s.genEnd.size() + s.killEnd.size() + s.access.size();
    }
    if (telemetry::enabled()) {
        const AddrCheckTelemetry &m = AddrCheckTelemetry::get();
        telemetry::registry().observe(m.summarySize,
                                      s.genEnd.size() + s.killEnd.size() +
                                          s.access.size());
    }
    commitBlock(l, t, local_errors, checks, 0);
}

void
ButterflyAddrCheck::pass1Batched(const BlockView &block)
{
    const EpochId l = block.epoch;
    const ThreadId t = block.thread;
    BlockSummary &s = slot(l, t);
    s = BlockSummary{};
    s.epoch = l;

    AddrBatchScratch &scratch = addrBatchScratch();
    BlockBatch &b = scratch.batch;
    b.assign(block);

    // Expand the columns into (key, op) pairs in exactly the scalar
    // walk's expansion order; an op's index is its emission ordinal, so
    // flagged records can be put back into scalar order before
    // committing (ErrorLog keeps the *first* record per event, so
    // order is observable).
    std::vector<KeyOp> &ops = scratch.ops;
    ops.clear();
    auto expand = [&](std::size_t evt, Addr base, std::uint16_t size,
                      std::uint8_t op) {
        if (base == kNoAddr || !config_.monitored(base))
            return;
        const Addr first = config_.keyOf(base);
        const Addr last = config_.keyOf(base + (size > 0 ? size - 1 : 0));
        for (Addr k = first; k <= last; ++k)
            ops.push_back(KeyOp{k, base, static_cast<std::uint32_t>(evt),
                                size, op});
    };
    for (std::size_t i = 0; i < b.size(); ++i) {
        switch (b.kinds[i]) {
          case EventKind::Alloc:
            expand(i, b.addrs[i], b.sizes[i], 1);
            break;
          case EventKind::Free:
            expand(i, b.addrs[i], b.sizes[i], 2);
            break;
          case EventKind::Read:
          case EventKind::Write:
          case EventKind::Use:
            expand(i, b.addrs[i], b.sizes[i], 0);
            break;
          case EventKind::Assign:
            expand(i, b.addrs[i], b.sizes[i], 0);
            if (b.nsrc[i] >= 1)
                expand(i, b.src0[i], b.sizes[i], 0);
            if (b.nsrc[i] >= 2)
                expand(i, b.src1[i], b.sizes[i], 0);
            break;
          default:
            break;
        }
    }

    // Partition by key (stable: scalar order within a key), then
    // resolve each key's ops as one run: a single LSOS probe seeds the
    // allocation state, and the run replays the alloc/free transitions
    // in program order. Valid because the LSOS inputs (older summaries
    // + SOS) are frozen while pass 1 of this epoch runs, so probe order
    // is free.
    groupByKey(
        ops.size(), [&](std::size_t i) { return ops[i].key; },
        scratch.counts, scratch.order);

    scratch.accessKeys.clear();
    scratch.allocKeys.clear();
    scratch.freeKeys.clear();
    scratch.genKeys.clear();
    scratch.killKeys.clear();
    scratch.flagged.clear();

    std::size_t i = 0;
    const std::size_t m = ops.size();
    while (i < m) {
        const Addr key = ops[scratch.order[i]].key;
        bool state = lsosBaseContains(key, l, t); // once per distinct key
        bool saw_access = false;
        bool saw_alloc = false;
        bool saw_free = false;
        std::uint8_t last_change = 0;
        for (; i < m && ops[scratch.order[i]].key == key; ++i) {
            const std::uint32_t emit = scratch.order[i];
            const KeyOp &op = ops[emit];
            const std::uint64_t index = block.first + op.evt;
            switch (op.op) {
              case 0: // access
                saw_access = true;
                if (!state)
                    scratch.flagged.emplace_back(
                        emit,
                        ErrorRecord{t, index, op.base,
                                    ErrorKind::UnallocatedAccess, op.size});
                break;
              case 1: // alloc
                saw_alloc = true;
                last_change = 1;
                if (state)
                    scratch.flagged.emplace_back(
                        emit,
                        ErrorRecord{t, index, op.base,
                                    ErrorKind::DoubleAlloc, op.size});
                state = true;
                break;
              default: // free
                saw_free = true;
                last_change = 2;
                if (!state)
                    scratch.flagged.emplace_back(
                        emit,
                        ErrorRecord{t, index, op.base,
                                    ErrorKind::UnallocatedFree, op.size});
                state = false;
                break;
            }
        }
        if (saw_access)
            scratch.accessKeys.push_back(key);
        if (saw_alloc)
            scratch.allocKeys.push_back(key);
        if (saw_free)
            scratch.freeKeys.push_back(key);
        if (last_change == 1)
            scratch.genKeys.push_back(key); // net allocated at block end
        else if (last_change == 2)
            scratch.killKeys.push_back(key); // net freed at block end
    }

    // The per-run key lists are sorted and unique by construction:
    // one bulk insert per summary set.
    s.access.insertBulk(scratch.accessKeys);
    s.allocAny.insertBulk(scratch.allocKeys);
    s.freeAny.insertBulk(scratch.freeKeys);
    s.genEnd.insertBulk(scratch.genKeys);
    s.killEnd.insertBulk(scratch.killKeys);

    // Restore scalar emission order (emit ordinals are unique).
    std::sort(scratch.flagged.begin(), scratch.flagged.end(),
              [](const auto &a, const auto &b2) {
                  return a.first < b2.first;
              });
    std::vector<ErrorRecord> local_errors;
    local_errors.reserve(scratch.flagged.size());
    for (const auto &p : scratch.flagged)
        local_errors.push_back(p.second);

    finishPass1(l, t, s, local_errors, m);
}

void
ButterflyAddrCheck::pass1(const BlockView &block)
{
    if (batched_) {
        pass1Batched(block);
        return;
    }

    const EpochId l = block.epoch;
    const ThreadId t = block.thread;
    BlockSummary &s = slot(l, t);
    s = BlockSummary{};
    s.epoch = l;

    std::vector<ErrorRecord> local_errors;
    std::uint64_t checks = 0;

    // Local allocation-state delta on top of the LSOS (key -> allocated?).
    std::unordered_map<Addr, bool> delta;
    auto contains = [&](Addr key) {
        auto it = delta.find(key);
        if (it != delta.end())
            return it->second;
        return lsosBaseContains(key, l, t);
    };
    auto flag = [&](std::uint64_t index, Addr addr, std::uint16_t size,
                    ErrorKind kind) {
        local_errors.push_back(ErrorRecord{t, index, addr, kind, size});
    };

    std::vector<Addr> keys;
    for (InstrOffset i = 0; i < block.size(); ++i) {
        const Event &e = block.events[i];
        const std::uint64_t index = block.first + i;

        auto check_access = [&](Addr base, std::uint16_t size) {
            keysOf(base, size, keys);
            for (Addr k : keys) {
                ++checks;
                if (!contains(k))
                    flag(index, base, size,
                         ErrorKind::UnallocatedAccess);
                s.access.insert(k);
            }
        };

        switch (e.kind) {
          case EventKind::Alloc:
            keysOf(e.addr, e.size, keys);
            for (Addr k : keys) {
                ++checks;
                if (contains(k))
                    flag(index, e.addr, e.size, ErrorKind::DoubleAlloc);
                delta[k] = true;
                s.allocAny.insert(k);
                s.genEnd.insert(k);
                s.killEnd.erase(k);
            }
            break;

          case EventKind::Free:
            keysOf(e.addr, e.size, keys);
            for (Addr k : keys) {
                ++checks;
                if (!contains(k))
                    flag(index, e.addr, e.size,
                         ErrorKind::UnallocatedFree);
                delta[k] = false;
                s.freeAny.insert(k);
                s.killEnd.insert(k);
                s.genEnd.erase(k);
            }
            break;

          case EventKind::Read:
          case EventKind::Write:
          case EventKind::Use:
            check_access(e.addr, e.size);
            break;

          case EventKind::Assign: {
            check_access(e.addr, e.size);
            const Addr srcs[2] = {e.src0, e.src1};
            for (unsigned n = 0; n < e.nsrc; ++n)
                check_access(srcs[n], e.size);
            break;
          }

          default:
            break;
        }
    }

    finishPass1(l, t, s, local_errors, checks);
}

void
ButterflyAddrCheck::pass2(const BlockView &block)
{
    const EpochId l = block.epoch;
    const ThreadId t = block.thread;

    // Meet the wing summaries S_{l,t} (epochs l-1..l+1, threads != t).
    AddrSet wing_genkill;
    AddrSet wing_access;
    const EpochId lo = l >= 1 ? l - 1 : 0;
    for (EpochId w = lo; w <= l + 1; ++w) {
        for (ThreadId u = 0; u < summaries_.size(); ++u) {
            if (u == t)
                continue;
            const BlockSummary *s = slotIfValid(w, u);
            if (!s)
                continue;
            wing_genkill.unionWith(s->allocAny);
            wing_genkill.unionWith(s->freeAny);
            wing_access.unionWith(s->access);
        }
    }

    std::vector<ErrorRecord> local_errors;
    std::uint64_t isolation = 0;

    // Isolation check (Section 6.1): a body alloc/free conflicts with any
    // concurrent alloc/free/access of the same key; a body access
    // conflicts with any concurrent alloc/free of its key.
    std::vector<Addr> keys;
    for (InstrOffset i = 0; i < block.size(); ++i) {
        const Event &e = block.events[i];
        const std::uint64_t index = block.first + i;

        auto check_state_change = [&](Addr base, std::uint16_t size) {
            keysOf(base, size, keys);
            for (Addr k : keys) {
                if (wing_genkill.contains(k) || wing_access.contains(k)) {
                    local_errors.push_back(ErrorRecord{
                        t, index, base, ErrorKind::NonIsolatedOp, size});
                    ++isolation;
                    return;
                }
            }
        };
        auto check_access = [&](Addr base, std::uint16_t size) {
            keysOf(base, size, keys);
            for (Addr k : keys) {
                if (wing_genkill.contains(k)) {
                    local_errors.push_back(ErrorRecord{
                        t, index, base, ErrorKind::NonIsolatedOp, size});
                    ++isolation;
                    return;
                }
            }
        };

        switch (e.kind) {
          case EventKind::Alloc:
          case EventKind::Free:
            check_state_change(e.addr, e.size);
            break;
          case EventKind::Read:
          case EventKind::Write:
          case EventKind::Use:
            check_access(e.addr, e.size);
            break;
          case EventKind::Assign: {
            check_access(e.addr, e.size);
            const Addr srcs[2] = {e.src0, e.src1};
            for (unsigned n = 0; n < e.nsrc; ++n)
                check_access(srcs[n], e.size);
            break;
          }
          default:
            break;
        }
    }

    commitBlock(l, t, local_errors, 0, isolation);
}

void
ButterflyAddrCheck::finalizeEpoch(EpochId l)
{
    const std::size_t nthreads = summaries_.size();

    // KILL_l = U_t KILL_{l,t}
    AddrSet kill_epoch;
    for (ThreadId t = 0; t < nthreads; ++t) {
        if (const BlockSummary *s = slotIfValid(l, t))
            kill_epoch.unionWith(s->killEnd);
    }

    // GEN_l: allocated by some thread, and every other thread
    // allocates-or-never-frees it across epochs l-1..l (Section 5.2).
    auto gen_span = [&](Addr key, ThreadId u) {
        const BlockSummary *cur = slotIfValid(l, u);
        if (cur && cur->genEnd.contains(key))
            return true;
        if (l >= 1) {
            const BlockSummary *prev = slotIfValid(l - 1, u);
            if (prev && prev->genEnd.contains(key) &&
                !(cur && cur->killEnd.contains(key))) {
                return true;
            }
        }
        return false;
    };
    auto not_kill_span = [&](Addr key, ThreadId u) {
        if (l >= 1) {
            const BlockSummary *prev = slotIfValid(l - 1, u);
            if (prev && prev->killEnd.contains(key))
                return false;
        }
        const BlockSummary *cur = slotIfValid(l, u);
        if (cur && cur->killEnd.contains(key))
            return false;
        return true;
    };

    AddrSet gen_epoch;
    for (ThreadId t = 0; t < nthreads; ++t) {
        const BlockSummary *s = slotIfValid(l, t);
        if (!s)
            continue;
        for (Addr key : s->genEnd) {
            bool all_others = true;
            for (ThreadId u = 0; u < nthreads; ++u) {
                if (u == t)
                    continue;
                if (!gen_span(key, u) && !not_kill_span(key, u)) {
                    all_others = false;
                    break;
                }
            }
            if (all_others)
                gen_epoch.insert(key);
        }
    }

    sosWork_[l] = gen_epoch.size() + kill_epoch.size();

    // Single-writer SOS advance: SOS_{l+2} = GEN_l U (SOS_{l+1} - KILL_l).
    sos_.subtract(kill_epoch);
    sos_.unionWith(gen_epoch);

    if (telemetry::enabled()) {
        telemetry::registry().set(AddrCheckTelemetry::get().sosSize,
                                  sos_.size());
    }
}

std::uint64_t
ButterflyAddrCheck::errorsInBlock(EpochId l, ThreadId t) const
{
    auto it = errorsPerBlock_.find(blockKey(l, t));
    return it == errorsPerBlock_.end() ? 0 : it->second;
}

std::uint64_t
ButterflyAddrCheck::summarySize(EpochId l, ThreadId t) const
{
    auto it = summarySizes_.find(blockKey(l, t));
    return it == summarySizes_.end() ? 0 : it->second;
}

std::uint64_t
ButterflyAddrCheck::sosUpdateWork(EpochId l) const
{
    auto it = sosWork_.find(l);
    return it == sosWork_.end() ? 0 : it->second;
}

} // namespace bfly
