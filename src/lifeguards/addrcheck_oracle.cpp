#include "lifeguards/addrcheck_oracle.hpp"

#include <algorithm>

namespace bfly {

namespace {

/** An event with its per-thread program index and visibility order. */
struct IndexedEvent
{
    std::uint64_t gseq;
    ThreadId tid;
    std::uint64_t index;
    const Event *e;
};

} // namespace

AddrCheckOracle::AddrCheckOracle(const AddrCheckConfig &config)
    : config_(config)
{}

void
AddrCheckOracle::checkKeys(ThreadId tid, std::uint64_t index, Addr base,
                           std::uint16_t size, bool want_allocated,
                           ErrorKind kind_if_bad)
{
    if (base == kNoAddr || !config_.monitored(base))
        return;
    const Addr first = config_.keyOf(base);
    const Addr last = config_.keyOf(base + (size > 0 ? size - 1 : 0));
    const std::size_t count = static_cast<std::size_t>(last - first) + 1;
    eventsChecked_ += count;
    // One span walk instead of one shadow lookup per key. The log
    // coalesces repeated reports of the same event, so flagging the
    // event once is equivalent to the old per-key reporting.
    bool any_bad = false;
    allocated_.forEachInRange(first, count, [&](std::uint8_t v) {
        any_bad |= (v != 0) != want_allocated;
    });
    if (any_bad)
        errors_.report(tid, index, base, kind_if_bad, size);
}

void
AddrCheckOracle::processOne(ThreadId tid, std::uint64_t index,
                            const Event &e)
{
    switch (e.kind) {
      case EventKind::Alloc: {
        checkKeys(tid, index, e.addr, e.size, false,
                  ErrorKind::DoubleAlloc);
        if (e.addr != kNoAddr && config_.monitored(e.addr)) {
            const Addr first = config_.keyOf(e.addr);
            const Addr last = config_.keyOf(
                e.addr + (e.size > 0 ? e.size - 1 : 0));
            allocated_.setRange(
                first, static_cast<std::size_t>(last - first) + 1, 1);
        }
        break;
      }
      case EventKind::Free: {
        checkKeys(tid, index, e.addr, e.size, true,
                  ErrorKind::UnallocatedFree);
        if (e.addr != kNoAddr && config_.monitored(e.addr)) {
            const Addr first = config_.keyOf(e.addr);
            const Addr last = config_.keyOf(
                e.addr + (e.size > 0 ? e.size - 1 : 0));
            allocated_.setRange(
                first, static_cast<std::size_t>(last - first) + 1, 0);
        }
        break;
      }
      case EventKind::Read:
      case EventKind::Write:
      case EventKind::Use:
        checkKeys(tid, index, e.addr, e.size, true,
                  ErrorKind::UnallocatedAccess);
        break;
      case EventKind::Assign: {
        checkKeys(tid, index, e.addr, e.size, true,
                  ErrorKind::UnallocatedAccess);
        const Addr srcs[2] = {e.src0, e.src1};
        for (unsigned n = 0; n < e.nsrc; ++n) {
            checkKeys(tid, index, srcs[n], e.size, true,
                      ErrorKind::UnallocatedAccess);
        }
        break;
      }
      default:
        break;
    }
}

void
AddrCheckOracle::runOnTrace(const Trace &trace)
{
    // Build (gseq, tid, program index) triples, then replay in true
    // visibility order. Program indices stay program-ordered even when
    // a relaxed model made visibility order differ (TSO store delay).
    std::vector<IndexedEvent> merged;
    merged.reserve(trace.instructionCount());
    for (const ThreadTrace &tt : trace.threads) {
        std::uint64_t index = 0;
        for (const Event &e : tt.events) {
            if (e.kind == EventKind::Heartbeat)
                continue;
            merged.push_back(IndexedEvent{e.gseq, tt.tid, index, &e});
            ++index;
        }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const IndexedEvent &a, const IndexedEvent &b) {
                         return a.gseq < b.gseq;
                     });
    for (const IndexedEvent &ie : merged)
        processOne(ie.tid, ie.index, *ie.e);
}

} // namespace bfly
