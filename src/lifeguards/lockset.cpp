#include "lifeguards/lockset.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bfly {

namespace {

/**
 * The single memory access an event performs, for LOCKSET purposes.
 * Each event charges exactly ONE variable key (its primary address):
 * Assign sources are deliberately not treated as separate accesses so
 * that distinct variable keys never share a flagged event — the
 * ErrorLog coalesces by (tid, index), and one-key-per-event keeps the
 * butterfly's and the oracle's reports 1:1 with racy variables on both
 * sides of the diff.
 */
bool
accessOf(const Event &e, Addr &addr, bool &write)
{
    switch (e.kind) {
      case EventKind::Read:
      case EventKind::Use:
      case EventKind::Output:
        addr = e.addr;
        write = false;
        return true;
      case EventKind::Write:
      case EventKind::Assign:
        addr = e.addr;
        write = true;
        return true;
      default:
        return false;
    }
}

} // namespace

ButterflyLockSet::ButterflyLockSet(std::size_t num_threads,
                                   const LockSetConfig &config)
    : config_(config), summaries_(num_threads), entry_(num_threads, 0)
{
    ensure(config_.granularity > 0, "granularity must be positive");
}

ButterflyLockSet::BlockSummary &
ButterflyLockSet::slot(EpochId l, ThreadId t)
{
    return summaries_[t][l % kWindow];
}

const ButterflyLockSet::BlockSummary *
ButterflyLockSet::slotIfValid(EpochId l, ThreadId t) const
{
    const BlockSummary &s = summaries_[t][l % kWindow];
    return s.epoch == l ? &s : nullptr;
}

void
ButterflyLockSet::pass1(const BlockView &block)
{
    const EpochId l = block.epoch;
    const ThreadId t = block.thread;
    BlockSummary &s = slot(l, t);
    s = BlockSummary{};
    s.epoch = l;

    // Replay the block's lock operations, tracking which mask bits the
    // prefix has pinned (set/clear) — everything else is inherited from
    // the unknown epoch-entry state E.
    std::uint64_t set_prefix = 0;
    std::uint64_t clear_prefix = 0;
    std::uint64_t local_accesses = 0;

    for (InstrOffset i = 0; i < block.size(); ++i) {
        const Event &e = block.events[i];

        if (e.kind == EventKind::Lock) {
            const std::uint64_t bit = LockSetConfig::lockBit(e.addr);
            set_prefix |= bit;
            clear_prefix &= ~bit;
            continue;
        }
        if (e.kind == EventKind::Unlock) {
            const std::uint64_t bit = LockSetConfig::lockBit(e.addr);
            clear_prefix |= bit;
            set_prefix &= ~bit;
            continue;
        }

        Addr addr = kNoAddr;
        bool write = false;
        if (!accessOf(e, addr, write) || !config_.monitored(addr))
            continue;
        ++local_accesses;

        // This access holds, as a function of the entry mask E:
        //   set_prefix | (E & ~touched)
        const std::uint64_t touched = set_prefix | clear_prefix;
        const Addr key = config_.keyOf(addr);
        auto [it, fresh] = s.keys.emplace(key, KeyAccess{});
        KeyAccess &ka = it->second;
        if (fresh) {
            ka.one = set_prefix;
            ka.pass = ~touched;
            ka.first = i;
        } else {
            // Intersect with the running fold one | (E & pass): a bit
            // survives iff both sides hold it for the same E.
            const std::uint64_t r1 = ka.one & set_prefix;
            const std::uint64_t re =
                (ka.one | ka.pass) & (set_prefix | ~touched) & ~r1;
            ka.one = r1;
            ka.pass = re;
        }
        ka.wrote = ka.wrote || write;
    }

    s.setMask = set_prefix;
    s.clearMask = clear_prefix;

    std::lock_guard<std::mutex> guard(mutex_);
    accesses_ += local_accesses;
}

bool
ButterflyLockSet::otherThreadSeen(Addr key, ThreadId t, EpochId l) const
{
    auto it = keyState_.find(key);
    if (it != keyState_.end() && it->second.seen &&
        (it->second.multi || it->second.firstThread != t)) {
        return true;
    }
    // Epochs not yet folded into the cumulative state: scan the ring.
    for (EpochId w = nextAbsorb_; w <= l + 1; ++w) {
        for (ThreadId u = 0; u < summaries_.size(); ++u) {
            if (u == t)
                continue;
            const BlockSummary *s = slotIfValid(w, u);
            if (s && s->keys.count(key))
                return true;
        }
    }
    return false;
}

void
ButterflyLockSet::pass2(const BlockView &block)
{
    const EpochId l = block.epoch;
    const ThreadId t = block.thread;
    BlockSummary &s = slot(l, t);

    // Resolve each variable's contribution against the exact entry lock
    // state E_{l,t} (finalizeEpoch(l-1) published it; the strict
    // schedule keeps it stable for the whole pass). An access stays in
    // Eraser's exclusive phase only while no other thread has touched
    // the variable anywhere the access could have raced — conservatively,
    // any epoch <= l+1.
    const std::uint64_t entry = entry_[t];
    s.resolved.clear();
    s.resolved.reserve(s.keys.size());
    for (const auto &[key, ka] : s.keys) {
        Resolved r;
        r.key = key;
        r.lockset = ka.one | (entry & ka.pass);
        r.index = block.first + ka.first;
        r.wrote = ka.wrote;
        r.exempt = !otherThreadSeen(key, t, l);
        s.resolved.push_back(r);
    }
    std::sort(s.resolved.begin(), s.resolved.end(),
              [](const Resolved &a, const Resolved &b) {
                  return a.key < b.key;
              });
}

void
ButterflyLockSet::finalizeEpoch(EpochId l)
{
    const std::size_t nthreads = summaries_.size();

    // Fold the window's accessor sets into the cumulative per-variable
    // state (pass 1 of epoch l+1 has completed under the strict
    // schedule, so its summaries are valid here).
    for (EpochId w = nextAbsorb_; w <= l + 1; ++w) {
        for (ThreadId u = 0; u < nthreads; ++u) {
            const BlockSummary *s = slotIfValid(w, u);
            if (!s)
                continue;
            for (const auto &[key, ka] : s->keys) {
                (void)ka;
                KeyState &ks = keyState_[key];
                if (!ks.seen) {
                    ks.seen = true;
                    ks.firstThread = u;
                } else if (ks.firstThread != u) {
                    ks.multi = true;
                }
            }
        }
    }
    nextAbsorb_ = l + 2;

    // Meet epoch l's resolved contributions in canonical order (thread
    // ascending, key ascending within a block) so reports are identical
    // across every scheduling mode.
    for (ThreadId t = 0; t < nthreads; ++t) {
        const BlockSummary *s = slotIfValid(l, t);
        if (!s)
            continue;
        for (const Resolved &r : s->resolved) {
            if (r.exempt)
                continue;
            KeyState &ks = keyState_[r.key];
            ks.shared = true;
            ks.candidate &= r.lockset;
            ks.sharedWrite = ks.sharedWrite || r.wrote;
            if (!ks.reported && ks.sharedWrite && ks.candidate == 0) {
                ks.reported = true;
                errors_.report(t, r.index, r.key * config_.granularity,
                               ErrorKind::DataRace,
                               static_cast<std::uint16_t>(
                                   config_.granularity));
            }
        }
    }

    // Chain the exact per-thread lock state into epoch l+1's entry.
    for (ThreadId t = 0; t < nthreads; ++t) {
        if (const BlockSummary *s = slotIfValid(l, t)) {
            entry_[t] = (entry_[t] & ~(s->setMask | s->clearMask)) |
                        s->setMask;
        }
    }
}

LockSetOracle::LockSetOracle(const LockSetConfig &config) : config_(config)
{
    ensure(config_.granularity > 0, "granularity must be positive");
}

void
LockSetOracle::processOne(ThreadId tid, std::uint64_t index, const Event &e)
{
    if (e.kind == EventKind::Lock) {
        held_[tid] |= LockSetConfig::lockBit(e.addr);
        return;
    }
    if (e.kind == EventKind::Unlock) {
        held_[tid] &= ~LockSetConfig::lockBit(e.addr);
        return;
    }

    Addr addr = kNoAddr;
    bool write = false;
    if (!accessOf(e, addr, write) || !config_.monitored(addr))
        return;

    const Addr key = config_.keyOf(addr);
    VarState &v = vars_[key];
    if (!v.seen) {
        // First accessor: Eraser's exclusive (initialization) phase.
        v.seen = true;
        v.firstThread = tid;
        return;
    }
    if (!v.shared) {
        if (tid == v.firstThread)
            return; // still exclusive
        v.shared = true; // second thread arrives: intersect from here on
    }

    auto held = held_.find(tid);
    v.candidate &= held == held_.end() ? 0 : held->second;
    v.sharedWrite = v.sharedWrite || write;
    if (!v.reported && v.sharedWrite && v.candidate == 0) {
        v.reported = true;
        errors_.report(tid, index, key * config_.granularity,
                       ErrorKind::DataRace,
                       static_cast<std::uint16_t>(config_.granularity));
    }
}

void
LockSetOracle::runOnTrace(const Trace &trace)
{
    struct IndexedEvent
    {
        std::uint64_t gseq;
        ThreadId tid;
        std::uint64_t index;
        const Event *e;
    };
    std::vector<IndexedEvent> order;
    for (const ThreadTrace &tt : trace.threads) {
        std::uint64_t index = 0;
        for (const Event &e : tt.events) {
            if (e.kind == EventKind::Heartbeat)
                continue;
            order.push_back(IndexedEvent{e.gseq, tt.tid, index++, &e});
        }
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const IndexedEvent &a, const IndexedEvent &b) {
                         return a.gseq < b.gseq;
                     });
    for (const IndexedEvent &ie : order)
        processOne(ie.tid, ie.index, *ie.e);
}

} // namespace bfly
