#include "sim/cmp.hpp"

#include "common/logging.hpp"

namespace bfly {

CmpConfig
CmpConfig::forCores(unsigned cores)
{
    CmpConfig cfg;
    cfg.numCores = cores;
    if (cores <= 4)
        cfg.l2.sizeBytes = 2 * 1024 * 1024;
    else if (cores <= 8)
        cfg.l2.sizeBytes = 4 * 1024 * 1024;
    else
        cfg.l2.sizeBytes = 8 * 1024 * 1024;
    return cfg;
}

Cmp::Cmp(const CmpConfig &config) : config_(config)
{
    ensure(config_.numCores > 0, "CMP needs at least one core");
    ensure(config_.l2Banks > 0, "L2 needs at least one bank");
    l1_.reserve(config_.numCores);
    for (unsigned c = 0; c < config_.numCores; ++c)
        l1_.emplace_back(config_.l1d);

    // Each bank holds an equal share of the total L2 capacity.
    CacheConfig bank = config_.l2;
    bank.sizeBytes = config_.l2.sizeBytes / config_.l2Banks;
    bank.indexDivisor = config_.l2Banks;
    l2_.reserve(config_.l2Banks);
    for (unsigned b = 0; b < config_.l2Banks; ++b)
        l2_.emplace_back(bank);
}

Cycles
Cmp::access(unsigned core, Addr addr, bool is_write)
{
    ensure(core < l1_.size(), "core id out of range");

    Cycles latency = config_.l1d.latency;
    const bool l1_hit = l1_[core].access(addr);
    if (!l1_hit) {
        latency += config_.l2.latency;
        const bool l2_hit = l2_[bankOf(addr)].access(addr);
        if (!l2_hit)
            latency += config_.memLatency;
    }

    if (is_write) {
        // Write-invalidate coherence: knock the line out of all other L1s.
        for (unsigned c = 0; c < l1_.size(); ++c) {
            if (c != core && l1_[c].probe(addr)) {
                l1_[c].invalidate(addr);
                ++coherenceMisses_;
            }
        }
    }
    return latency;
}

StatSet
Cmp::stats() const
{
    StatSet s;
    std::uint64_t l1_hits = 0, l1_misses = 0;
    for (const Cache &c : l1_) {
        l1_hits += c.hits();
        l1_misses += c.misses();
    }
    std::uint64_t l2_hits = 0, l2_misses = 0;
    for (const Cache &c : l2_) {
        l2_hits += c.hits();
        l2_misses += c.misses();
    }
    s.set("l1.hits", l1_hits);
    s.set("l1.misses", l1_misses);
    s.set("l2.hits", l2_hits);
    s.set("l2.misses", l2_misses);
    s.set("coherence.invalidations", coherenceMisses_);
    return s;
}

} // namespace bfly
