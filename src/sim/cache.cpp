#include "sim/cache.hpp"

#include "common/logging.hpp"

namespace bfly {

Cache::Cache(const CacheConfig &config)
    : config_(config), numSets_(config.numSets()),
      ways_(numSets_ * config.assoc)
{
    ensure(numSets_ > 0, "cache must have at least one set");
}

bool
Cache::access(Addr addr)
{
    const Addr line = lineOf(addr);
    const std::size_t base = setOf(line) * config_.assoc;
    ++clock_;

    std::size_t victim = base;
    for (std::size_t w = base; w < base + config_.assoc; ++w) {
        if (ways_[w].valid && ways_[w].tag == line) {
            ways_[w].lastUse = clock_;
            ++hits_;
            return true;
        }
        if (!ways_[w].valid) {
            victim = w;
        } else if (ways_[victim].valid &&
                   ways_[w].lastUse < ways_[victim].lastUse) {
            victim = w;
        }
    }
    ++misses_;
    ways_[victim] = {line, clock_, true};
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const Addr line = lineOf(addr);
    const std::size_t base = setOf(line) * config_.assoc;
    for (std::size_t w = base; w < base + config_.assoc; ++w) {
        if (ways_[w].valid && ways_[w].tag == line)
            return true;
    }
    return false;
}

void
Cache::invalidate(Addr addr)
{
    const Addr line = lineOf(addr);
    const std::size_t base = setOf(line) * config_.assoc;
    for (std::size_t w = base; w < base + config_.assoc; ++w) {
        if (ways_[w].valid && ways_[w].tag == line) {
            ways_[w].valid = false;
            ++invalidations_;
            return;
        }
    }
}

void
Cache::flush()
{
    for (Way &w : ways_)
        w.valid = false;
}

} // namespace bfly
