/**
 * @file
 * Log-Based-Architectures (LBA) style coupling between application cores
 * and lifeguard cores.
 *
 * In LBA (Chen et al., ISCA'08 — the platform the paper's prototype runs
 * on), each application core streams a per-thread event log through a
 * bounded buffer to a dedicated lifeguard core. Three timing mechanisms
 * matter and are modeled here exactly:
 *
 *  1. back-pressure: the application core stalls when its log buffer is
 *     full, so end-to-end time is lifeguard-limited when monitoring is the
 *     bottleneck (which §7.1 says it is);
 *  2. the butterfly two-pass structure: pass 1 consumes the log online;
 *     pass 2 for epoch l-1 can only run after *all* threads finished pass 1
 *     of epoch l (its wings), giving one barrier per pass per epoch;
 *  3. per-epoch fixed costs (barrier stalls, SOS update) that amortize with
 *     larger epochs — the mechanism behind Figure 12.
 *
 * The functions below are pure timing: they take per-record cycle costs
 * (derived from the CMP cache model and the lifeguard instruction-cost
 * model) and compute completion times with exact single-producer
 * single-consumer bounded-queue recurrences.
 */

#ifndef BUTTERFLY_SIM_LBA_HPP
#define BUTTERFLY_SIM_LBA_HPP

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace bfly {

/** Result of a coupled producer/consumer timing simulation. */
struct TimingResult
{
    /** Completion time of the whole run (lifeguard side). */
    Cycles totalCycles = 0;
    /** When the application side finished producing (incl. stalls). */
    Cycles appCycles = 0;
    /** Cycles the application spent stalled on a full log buffer. */
    Cycles appStallCycles = 0;
    /** Cycles lifeguard threads spent waiting at epoch barriers. */
    Cycles barrierWaitCycles = 0;
    /**
     * barrierStallPerBlock[t][l]: barrier-wait cycles attributed to
     * thread t around epoch l (populated by simulateButterfly only).
     * The pass-1 barrier of window step l charges epoch l; the pass-2
     * barrier charges epoch l-1; the trailing step charges the final
     * epoch. Summing every cell reproduces barrierWaitCycles exactly —
     * this is the per-block breakdown the pipelined scheduler eliminates,
     * so it shows *where* a skewed trace loses time to barriers.
     */
    std::vector<std::vector<Cycles>> barrierStallPerBlock;
    /**
     * Pipelined model only: total cycles tasks spent between becoming
     * runnable (all dependencies satisfied) and starting on a worker —
     * the scheduling analogue of barrierWaitCycles.
     */
    Cycles taskWaitCycles = 0;
};

/**
 * Exact SPSC bounded-buffer pipeline timing.
 *
 * Record i becomes available at produce[i] and is consumed in order;
 * production of record i cannot begin until record i-capacity has been
 * consumed (buffer slot free). Used for the timesliced baseline (one
 * producer core, one sequential lifeguard core, no barriers).
 *
 * @param prod_cost  application cycles to produce each record
 * @param cons_cost  lifeguard cycles to consume each record
 * @param capacity   log buffer capacity in records
 */
TimingResult simulateSpsc(const std::vector<Cycles> &prod_cost,
                          const std::vector<Cycles> &cons_cost,
                          std::size_t capacity);

/** Per-(thread, epoch) cost inputs for the butterfly timing model. */
struct EpochCosts
{
    /** Application cycles per record in this block (production). */
    std::vector<Cycles> appCost;
    /** Lifeguard pass-1 cycles per record (consumption). */
    std::vector<Cycles> pass1Cost;
    /** Aggregate lifeguard pass-2 cycles for this block. */
    Cycles pass2Cost = 0;
};

/** Whole-run inputs for the butterfly timing model. */
struct ButterflyTimingInput
{
    /** costs[t][l] for every thread t and epoch l (rectangular). */
    std::vector<std::vector<EpochCosts>> costs;
    /** Log buffer capacity in records (per thread pair). */
    std::size_t bufferCapacity = 512;
    /** Fixed cycles charged at each barrier crossing. */
    Cycles barrierCost = 200;
    /** Aggregate SOS-update cycles per epoch (master thread). */
    std::vector<Cycles> sosUpdateCost;
};

/**
 * Timing of parallel butterfly monitoring: T application cores each coupled
 * to a lifeguard core by a bounded buffer; lifeguards run pass 1 of epoch l,
 * barrier, pass 2 of epoch l-1, and the master thread folds the epoch
 * summary into the SOS.
 */
TimingResult simulateButterfly(const ButterflyTimingInput &input);

/**
 * Timing of the *pipelined* butterfly schedule: the same per-block costs
 * executed as a dependency task graph (the one WindowSchedule::
 * runPipelined builds) by @p workers work-conserving lifeguard cores —
 * no barriers, a block-pass starts the moment its prerequisites finish
 * and a core is free. Greedy list scheduling in task order; admission
 * and retirement are free; finalizeEpoch costs sosUpdateCost[l].
 *
 * The model is lifeguard-bound (production coupling and barrierCost do
 * not apply — there are no barriers to cross), matching the paper's
 * observation that monitoring is the bottleneck. Comparing its
 * totalCycles against simulateButterfly's on the same input isolates
 * what dependency-driven scheduling buys over barrier-per-pass.
 *
 * @param strict_finalize  keep finalize(l) behind pass 2 of epoch l
 *                         (AnalysisDriver::finalizeAfterPass2); relaxed
 *                         drivers (ADDRCHECK) pass false
 */
TimingResult simulateButterflyPipelined(const ButterflyTimingInput &input,
                                        std::size_t workers,
                                        bool strict_finalize);

/**
 * Timing of the unmonitored parallel run: per-thread production costs only,
 * no lifeguard coupling. Total time is the slowest thread.
 *
 * @param per_thread_cost  sum of application cycles for each thread
 */
TimingResult
simulateUnmonitored(const std::vector<Cycles> &per_thread_cost);

} // namespace bfly

#endif // BUTTERFLY_SIM_LBA_HPP
