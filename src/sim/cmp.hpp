/**
 * @file
 * Chip-multiprocessor memory hierarchy (Table 1 configuration).
 *
 * Per-core L1-D caches above a shared, banked L2, above memory. Coherence is
 * write-invalidate across the L1s: a write by one core removes the line from
 * every other core's L1, so producer/consumer sharing patterns (e.g. OCEAN's
 * boundary exchanges) pay coherence misses just as on real hardware. The
 * returned latency per access is what the core timing model charges.
 */

#ifndef BUTTERFLY_SIM_CMP_HPP
#define BUTTERFLY_SIM_CMP_HPP

#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "sim/cache.hpp"

namespace bfly {

/** Full CMP configuration, defaults from the paper's Table 1. */
struct CmpConfig
{
    unsigned numCores = 8;
    CacheConfig l1d{64 * 1024, 4, 64, 2};
    CacheConfig l2{4 * 1024 * 1024, 8, 64, 6};
    unsigned l2Banks = 4;
    Cycles memLatency = 90;

    /**
     * Table 1 scales L2 with core count: 4 cores - 2 MB, 8 - 4 MB,
     * 16 - 8 MB. @return config for @p cores total cores.
     */
    static CmpConfig forCores(unsigned cores);
};

/** The memory system: per-core L1s, shared banked L2, memory. */
class Cmp
{
  public:
    explicit Cmp(const CmpConfig &config);

    /**
     * Perform one data access by @p core.
     * @return total latency in cycles (L1 hit latency at minimum).
     */
    Cycles access(unsigned core, Addr addr, bool is_write);

    const CmpConfig &config() const { return config_; }

    /** Aggregate hit/miss/invalidation counters for reporting. */
    StatSet stats() const;

  private:
    CmpConfig config_;
    std::vector<Cache> l1_;   ///< one per core
    std::vector<Cache> l2_;   ///< one per bank
    std::uint64_t coherenceMisses_ = 0;

    std::size_t
    bankOf(Addr addr) const
    {
        return (addr / config_.l2.lineBytes) % config_.l2Banks;
    }
};

} // namespace bfly

#endif // BUTTERFLY_SIM_CMP_HPP
