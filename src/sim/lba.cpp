#include "sim/lba.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bfly {

namespace {

/**
 * Ring of the last @c capacity consume-completion times, so production of
 * record i can wait for the consumption of record i-capacity (slot reuse)
 * without storing the whole history.
 */
class ConsumeRing
{
  public:
    explicit ConsumeRing(std::size_t capacity)
        : ring_(capacity, 0), capacity_(capacity)
    {}

    /** Completion time of record @p i - capacity (0 if i < capacity). */
    Cycles
    slotFree(std::uint64_t i) const
    {
        if (i < capacity_)
            return 0;
        return ring_[(i - capacity_) % capacity_];
    }

    void
    record(std::uint64_t i, Cycles done)
    {
        ring_[i % capacity_] = done;
    }

  private:
    std::vector<Cycles> ring_;
    std::size_t capacity_;
};

} // namespace

TimingResult
simulateSpsc(const std::vector<Cycles> &prod_cost,
             const std::vector<Cycles> &cons_cost, std::size_t capacity)
{
    ensure(prod_cost.size() == cons_cost.size(),
           "producer/consumer cost streams must align");
    ensure(capacity > 0, "buffer capacity must be positive");

    TimingResult result;
    ConsumeRing ring(capacity);
    Cycles produce = 0;
    Cycles consume = 0;

    for (std::uint64_t i = 0; i < prod_cost.size(); ++i) {
        const Cycles slot_free = ring.slotFree(i);
        const Cycles stall = slot_free > produce ? slot_free - produce : 0;
        result.appStallCycles += stall;
        produce = std::max(produce, slot_free) + prod_cost[i];
        consume = std::max(consume, produce) + cons_cost[i];
        ring.record(i, consume);
    }
    result.appCycles = produce;
    result.totalCycles = consume;
    return result;
}

TimingResult
simulateButterfly(const ButterflyTimingInput &input)
{
    const std::size_t nthreads = input.costs.size();
    ensure(nthreads > 0, "butterfly timing needs at least one thread");
    const std::size_t nepochs = input.costs[0].size();
    for (const auto &per_thread : input.costs) {
        ensure(per_thread.size() == nepochs,
               "all threads must have the same epoch count");
    }
    ensure(input.bufferCapacity > 0, "buffer capacity must be positive");

    TimingResult result;

    // Per-thread production / consumption state.
    std::vector<ConsumeRing> rings(nthreads,
                                   ConsumeRing(input.bufferCapacity));
    std::vector<Cycles> produce(nthreads, 0);
    std::vector<Cycles> consume(nthreads, 0);
    std::vector<std::uint64_t> record_index(nthreads, 0);
    std::vector<Cycles> lg_ready(nthreads, 0);

    Cycles final_time = 0;

    // Step l runs pass 1 of epoch l (if any) and pass 2 of epoch l-1.
    for (std::size_t l = 0; l <= nepochs; ++l) {
        std::vector<Cycles> pass1_done(nthreads, 0);

        if (l < nepochs) {
            for (std::size_t t = 0; t < nthreads; ++t) {
                const EpochCosts &block = input.costs[t][l];
                ensure(block.appCost.size() == block.pass1Cost.size(),
                       "app/pass1 cost streams must align");
                Cycles cons = std::max(consume[t], lg_ready[t]);
                for (std::size_t k = 0; k < block.appCost.size(); ++k) {
                    const std::uint64_t i = record_index[t]++;
                    const Cycles slot_free = rings[t].slotFree(i);
                    const Cycles stall =
                        slot_free > produce[t] ? slot_free - produce[t] : 0;
                    result.appStallCycles += stall;
                    produce[t] = std::max(produce[t], slot_free) +
                                 block.appCost[k];
                    cons = std::max(cons, produce[t]) + block.pass1Cost[k];
                    rings[t].record(i, cons);
                }
                consume[t] = cons;
                pass1_done[t] = cons;
            }
        } else {
            for (std::size_t t = 0; t < nthreads; ++t)
                pass1_done[t] = std::max(consume[t], lg_ready[t]);
        }

        // Barrier after pass 1: everyone waits for the slowest thread.
        const Cycles slowest =
            *std::max_element(pass1_done.begin(), pass1_done.end());
        const Cycles barrier1 = slowest + input.barrierCost;
        for (std::size_t t = 0; t < nthreads; ++t)
            result.barrierWaitCycles += barrier1 - pass1_done[t];

        if (l == 0) {
            for (std::size_t t = 0; t < nthreads; ++t)
                lg_ready[t] = barrier1;
            final_time = barrier1;
            continue;
        }

        // Pass 2 over epoch l-1 (its wings through epoch l are complete).
        std::vector<Cycles> pass2_done(nthreads, 0);
        for (std::size_t t = 0; t < nthreads; ++t)
            pass2_done[t] = barrier1 + input.costs[t][l - 1].pass2Cost;

        const Cycles slowest2 =
            *std::max_element(pass2_done.begin(), pass2_done.end());
        Cycles barrier2 = slowest2 + input.barrierCost;
        for (std::size_t t = 0; t < nthreads; ++t)
            result.barrierWaitCycles += barrier2 - pass2_done[t];

        // Master thread folds the epoch summary into the SOS.
        if (l - 1 < input.sosUpdateCost.size())
            barrier2 += input.sosUpdateCost[l - 1];

        for (std::size_t t = 0; t < nthreads; ++t)
            lg_ready[t] = barrier2;
        final_time = barrier2;
    }

    result.totalCycles = final_time;
    result.appCycles = *std::max_element(produce.begin(), produce.end());
    return result;
}

TimingResult
simulateUnmonitored(const std::vector<Cycles> &per_thread_cost)
{
    TimingResult result;
    for (Cycles c : per_thread_cost) {
        result.totalCycles = std::max(result.totalCycles, c);
        result.appCycles = result.totalCycles;
    }
    return result;
}

} // namespace bfly
