#include "sim/lba.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>

#include "common/logging.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_span.hpp"

namespace bfly {

namespace {

/**
 * Pre-interned names for the simulated-pipeline timeline (pid 1 in the
 * Chrome trace; timestamps are simulated cycles). Each lifeguard thread
 * gets a track; track `nthreads` carries the master-thread events
 * (barriers, SOS updates).
 */
struct SimTimeline
{
    std::uint32_t pass1;
    std::uint32_t pass2;
    std::uint32_t barrier;
    std::uint32_t sosUpdate;
    std::uint32_t epochArg;

    static const SimTimeline &
    get()
    {
        static const SimTimeline s = [] {
            auto &t = telemetry::tracer();
            SimTimeline m;
            m.pass1 = t.internName("sim.pass1");
            m.pass2 = t.internName("sim.pass2");
            m.barrier = t.internName("sim.barrier");
            m.sosUpdate = t.internName("sim.sos_update");
            m.epochArg = t.internName("epoch");
            return m;
        }();
        return s;
    }
};

/**
 * Ring of the last @c capacity consume-completion times, so production of
 * record i can wait for the consumption of record i-capacity (slot reuse)
 * without storing the whole history.
 */
class ConsumeRing
{
  public:
    explicit ConsumeRing(std::size_t capacity)
        : ring_(capacity, 0), capacity_(capacity)
    {}

    /** Completion time of record @p i - capacity (0 if i < capacity). */
    Cycles
    slotFree(std::uint64_t i) const
    {
        if (i < capacity_)
            return 0;
        return ring_[(i - capacity_) % capacity_];
    }

    void
    record(std::uint64_t i, Cycles done)
    {
        ring_[i % capacity_] = done;
    }

  private:
    std::vector<Cycles> ring_;
    std::size_t capacity_;
};

} // namespace

TimingResult
simulateSpsc(const std::vector<Cycles> &prod_cost,
             const std::vector<Cycles> &cons_cost, std::size_t capacity)
{
    ensure(prod_cost.size() == cons_cost.size(),
           "producer/consumer cost streams must align");
    ensure(capacity > 0, "buffer capacity must be positive");

    TimingResult result;
    ConsumeRing ring(capacity);
    Cycles produce = 0;
    Cycles consume = 0;

    for (std::uint64_t i = 0; i < prod_cost.size(); ++i) {
        const Cycles slot_free = ring.slotFree(i);
        const Cycles stall = slot_free > produce ? slot_free - produce : 0;
        result.appStallCycles += stall;
        produce = std::max(produce, slot_free) + prod_cost[i];
        consume = std::max(consume, produce) + cons_cost[i];
        ring.record(i, consume);
    }
    result.appCycles = produce;
    result.totalCycles = consume;
    return result;
}

TimingResult
simulateButterfly(const ButterflyTimingInput &input)
{
    const std::size_t nthreads = input.costs.size();
    ensure(nthreads > 0, "butterfly timing needs at least one thread");
    const std::size_t nepochs = input.costs[0].size();
    for (const auto &per_thread : input.costs) {
        ensure(per_thread.size() == nepochs,
               "all threads must have the same epoch count");
    }
    ensure(input.bufferCapacity > 0, "buffer capacity must be positive");

    TimingResult result;
    result.barrierStallPerBlock.assign(
        nthreads, std::vector<Cycles>(nepochs, 0));
    // Step-l barrier stalls land on epoch l; the trailing step (l ==
    // nepochs) has no epoch of its own and charges the final one.
    auto stall_epoch = [&](std::size_t l) {
        return std::min(l, nepochs - 1);
    };

    // Simulated-cycle timeline export (pid 1). Guarded per epoch, not
    // per record, so the disabled cost is one branch per epoch.
    const bool traced = telemetry::enabled();
    const SimTimeline *tl = traced ? &SimTimeline::get() : nullptr;
    auto &ttr = telemetry::tracer();
    const auto mastertid = static_cast<std::uint16_t>(nthreads);

    // Per-thread production / consumption state.
    std::vector<ConsumeRing> rings(nthreads,
                                   ConsumeRing(input.bufferCapacity));
    std::vector<Cycles> produce(nthreads, 0);
    std::vector<Cycles> consume(nthreads, 0);
    std::vector<std::uint64_t> record_index(nthreads, 0);
    std::vector<Cycles> lg_ready(nthreads, 0);

    Cycles final_time = 0;

    // Step l runs pass 1 of epoch l (if any) and pass 2 of epoch l-1.
    for (std::size_t l = 0; l <= nepochs; ++l) {
        std::vector<Cycles> pass1_done(nthreads, 0);

        if (l < nepochs) {
            for (std::size_t t = 0; t < nthreads; ++t) {
                const EpochCosts &block = input.costs[t][l];
                ensure(block.appCost.size() == block.pass1Cost.size(),
                       "app/pass1 cost streams must align");
                Cycles cons = std::max(consume[t], lg_ready[t]);
                const Cycles cons_start = cons;
                for (std::size_t k = 0; k < block.appCost.size(); ++k) {
                    const std::uint64_t i = record_index[t]++;
                    const Cycles slot_free = rings[t].slotFree(i);
                    const Cycles stall =
                        slot_free > produce[t] ? slot_free - produce[t] : 0;
                    result.appStallCycles += stall;
                    produce[t] = std::max(produce[t], slot_free) +
                                 block.appCost[k];
                    cons = std::max(cons, produce[t]) + block.pass1Cost[k];
                    rings[t].record(i, cons);
                }
                consume[t] = cons;
                pass1_done[t] = cons;
                if (traced)
                    ttr.complete(tl->pass1, cons_start, cons - cons_start,
                                 telemetry::SpanTracer::kSimPid,
                                 static_cast<std::uint16_t>(t),
                                 tl->epochArg, l);
            }
        } else {
            for (std::size_t t = 0; t < nthreads; ++t)
                pass1_done[t] = std::max(consume[t], lg_ready[t]);
        }

        // Barrier after pass 1: everyone waits for the slowest thread.
        const Cycles slowest =
            *std::max_element(pass1_done.begin(), pass1_done.end());
        const Cycles barrier1 = slowest + input.barrierCost;
        for (std::size_t t = 0; t < nthreads; ++t) {
            const Cycles wait = barrier1 - pass1_done[t];
            result.barrierWaitCycles += wait;
            if (nepochs > 0)
                result.barrierStallPerBlock[t][stall_epoch(l)] += wait;
        }
        if (traced)
            ttr.complete(tl->barrier, slowest, input.barrierCost,
                         telemetry::SpanTracer::kSimPid, mastertid,
                         tl->epochArg, l);

        if (l == 0) {
            for (std::size_t t = 0; t < nthreads; ++t)
                lg_ready[t] = barrier1;
            final_time = barrier1;
            continue;
        }

        // Pass 2 over epoch l-1 (its wings through epoch l are complete).
        std::vector<Cycles> pass2_done(nthreads, 0);
        for (std::size_t t = 0; t < nthreads; ++t) {
            pass2_done[t] = barrier1 + input.costs[t][l - 1].pass2Cost;
            if (traced)
                ttr.complete(tl->pass2, barrier1,
                             input.costs[t][l - 1].pass2Cost,
                             telemetry::SpanTracer::kSimPid,
                             static_cast<std::uint16_t>(t), tl->epochArg,
                             l - 1);
        }

        const Cycles slowest2 =
            *std::max_element(pass2_done.begin(), pass2_done.end());
        Cycles barrier2 = slowest2 + input.barrierCost;
        for (std::size_t t = 0; t < nthreads; ++t) {
            const Cycles wait = barrier2 - pass2_done[t];
            result.barrierWaitCycles += wait;
            result.barrierStallPerBlock[t][l - 1] += wait;
        }
        if (traced)
            ttr.complete(tl->barrier, slowest2, input.barrierCost,
                         telemetry::SpanTracer::kSimPid, mastertid,
                         tl->epochArg, l - 1);

        // Master thread folds the epoch summary into the SOS.
        if (l - 1 < input.sosUpdateCost.size()) {
            if (traced && input.sosUpdateCost[l - 1] > 0)
                ttr.complete(tl->sosUpdate, barrier2,
                             input.sosUpdateCost[l - 1],
                             telemetry::SpanTracer::kSimPid, mastertid,
                             tl->epochArg, l - 1);
            barrier2 += input.sosUpdateCost[l - 1];
        }

        for (std::size_t t = 0; t < nthreads; ++t)
            lg_ready[t] = barrier2;
        final_time = barrier2;
    }

    result.totalCycles = final_time;
    result.appCycles = *std::max_element(produce.begin(), produce.end());
    return result;
}

TimingResult
simulateButterflyPipelined(const ButterflyTimingInput &input,
                           std::size_t workers, bool strict_finalize)
{
    const std::size_t T = input.costs.size();
    ensure(T > 0, "butterfly timing needs at least one thread");
    ensure(workers > 0, "pipelined timing needs at least one worker");
    const std::size_t L = input.costs[0].size();
    for (const auto &per_thread : input.costs) {
        ensure(per_thread.size() == L,
               "all threads must have the same epoch count");
    }

    TimingResult result;
    for (std::size_t t = 0; t < T; ++t) {
        Cycles app = 0;
        for (const EpochCosts &block : input.costs[t])
            for (Cycles c : block.appCost)
                app += c;
        result.appCycles = std::max(result.appCycles, app);
    }
    if (L == 0)
        return result;

    // Task table mirroring WindowSchedule's graph: A(0..L), P1, P2,
    // F, R. Admission and retirement cost nothing but still order the
    // graph.
    const std::size_t p1_base = L + 1;
    const std::size_t p2_base = p1_base + L * T;
    const std::size_t f_base = p2_base + L * T;
    const std::size_t r_base = f_base + L;
    const std::size_t total = r_base + L;
    const auto p1_id = [&](std::size_t l, std::size_t t) {
        return p1_base + l * T + t;
    };
    const auto p2_id = [&](std::size_t l, std::size_t t) {
        return p2_base + l * T + t;
    };

    std::vector<Cycles> duration(total, 0);
    for (std::size_t l = 0; l < L; ++l) {
        for (std::size_t t = 0; t < T; ++t) {
            Cycles p1 = 0;
            for (Cycles c : input.costs[t][l].pass1Cost)
                p1 += c;
            duration[p1_id(l, t)] = p1;
            duration[p2_id(l, t)] = input.costs[t][l].pass2Cost;
        }
        if (l < input.sosUpdateCost.size())
            duration[f_base + l] = input.sosUpdateCost[l];
    }

    std::vector<std::vector<std::uint32_t>> succ(total);
    std::vector<std::uint32_t> pending(total, 0);
    const auto add_edge = [&](std::size_t task, std::size_t prereq) {
        ++pending[task];
        succ[prereq].push_back(static_cast<std::uint32_t>(task));
    };
    for (std::size_t l = 0; l <= L; ++l) {
        if (l == 1)
            for (std::size_t u = 0; u < T; ++u)
                add_edge(1, p1_id(0, u));
        if (l >= 2)
            add_edge(l, f_base + (l - 2));
        if (l >= 3)
            add_edge(l, r_base + (l - 3));
    }
    for (std::size_t l = 0; l < L; ++l) {
        for (std::size_t t = 0; t < T; ++t) {
            add_edge(p1_id(l, t), l);
            add_edge(p2_id(l, t), l + 1);
            if (l + 1 < L)
                for (std::size_t u = 0; u < T; ++u)
                    if (u != t)
                        add_edge(p2_id(l, t), p1_id(l + 1, u));
        }
        if (l >= 1)
            add_edge(f_base + l, f_base + (l - 1));
        if (strict_finalize)
            for (std::size_t t = 0; t < T; ++t)
                add_edge(f_base + l, p2_id(l, t));
        if (l + 1 < L)
            for (std::size_t t = 0; t < T; ++t)
                add_edge(f_base + l, p1_id(l + 1, t));
        if (!strict_finalize && L == 1)
            for (std::size_t t = 0; t < T; ++t)
                add_edge(f_base, p1_id(0, t));
        for (std::size_t t = 0; t < T; ++t)
            add_edge(r_base + l, p2_id(l, t));
        if (l >= 1)
            add_edge(r_base + l, r_base + (l - 1));
    }

    // Greedy work-conserving list scheduling on `workers` identical
    // cores: a task starts on the earliest-free core once every
    // prerequisite has finished; ties break by task id (graph order).
    // Min-heaps via sort-free priority queues.
    using ReadyEntry = std::pair<Cycles, std::size_t>; // (ready, id)
    std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                        std::greater<ReadyEntry>>
        ready;
    std::priority_queue<Cycles, std::vector<Cycles>, std::greater<Cycles>>
        core_free;
    for (std::size_t w = 0; w < workers; ++w)
        core_free.push(0);
    std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                        std::greater<ReadyEntry>>
        running; // (finish, id)

    for (std::size_t id = 0; id < total; ++id)
        if (pending[id] == 0)
            ready.push({0, id});

    // Completions may be processed out of chronological order (instant
    // zero-duration tasks vs. running ones), so a successor's ready time
    // is the max prerequisite finish, tracked explicitly.
    std::vector<Cycles> ready_time(total, 0);
    const auto complete = [&](std::size_t id, Cycles finish) {
        for (std::uint32_t s : succ[id]) {
            ready_time[s] = std::max(ready_time[s], finish);
            if (--pending[s] == 0)
                ready.push({ready_time[s], s});
        }
    };

    std::size_t done = 0;
    while (done < total) {
        // Start every ready task whose prerequisites allow it, earliest
        // first; when nothing can start, retire the next completion.
        if (!ready.empty()) {
            const auto [ready_at, id] = ready.top();
            // A zero-duration task (admission, retirement, or an empty
            // block) completes instantly without occupying a core.
            if (duration[id] == 0) {
                ready.pop();
                ++done;
                complete(id, ready_at);
                continue;
            }
            // Needs a core; with every core busy, fall through to the
            // next completion, which frees one.
            if (!core_free.empty()) {
                const Cycles core_at = core_free.top();
                const Cycles start = std::max(ready_at, core_at);
                // If a running task finishes before this one could
                // start, process that completion first: it may ready an
                // earlier-runnable task.
                if (running.empty() || running.top().first >= start) {
                    ready.pop();
                    core_free.pop();
                    result.taskWaitCycles += start - ready_at;
                    running.push({start + duration[id], id});
                    continue;
                }
            }
        }
        ensure(!running.empty(),
               "pipelined timing graph stalled with tasks unfinished");
        const auto [finish, id] = running.top();
        running.pop();
        core_free.push(finish);
        ++done;
        complete(id, finish);
    }

    Cycles makespan = 0;
    while (!core_free.empty()) {
        makespan = std::max(makespan, core_free.top());
        core_free.pop();
    }
    result.totalCycles = makespan;
    return result;
}

TimingResult
simulateUnmonitored(const std::vector<Cycles> &per_thread_cost)
{
    TimingResult result;
    for (Cycles c : per_thread_cost) {
        result.totalCycles = std::max(result.totalCycles, c);
        result.appCycles = result.totalCycles;
    }
    return result;
}

} // namespace bfly
