/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * Functional-for-timing only: the model tracks which lines are resident so
 * the CMP can charge hit/miss latencies (Table 1 of the paper); it stores no
 * data. Invalidation hooks support the write-invalidate coherence the CMP
 * layer implements across L1s.
 */

#ifndef BUTTERFLY_SIM_CACHE_HPP
#define BUTTERFLY_SIM_CACHE_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace bfly {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::size_t sizeBytes = 64 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    Cycles latency = 2;
    /** Set-index divisor for banked caches: when an outer level selects
     *  a bank with (line % banks), the bank must index sets with
     *  line / banks or the bank-selection bits alias into the index. */
    unsigned indexDivisor = 1;

    std::size_t numSets() const
    {
        return sizeBytes / (std::size_t{assoc} * lineBytes);
    }
};

/** One set-associative LRU cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access the line containing @p addr, filling it on a miss.
     * @return true on hit.
     */
    bool access(Addr addr);

    /** True if the line containing @p addr is resident (no state change). */
    bool probe(Addr addr) const;

    /** Drop the line containing @p addr if resident. */
    void invalidate(Addr addr);

    /** Drop everything. */
    void flush();

    const CacheConfig &config() const { return config_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t invalidations() const { return invalidations_; }

  private:
    struct Way
    {
        Addr tag = kNoAddr;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    Addr lineOf(Addr addr) const { return addr / config_.lineBytes; }

    std::size_t
    setOf(Addr line) const
    {
        return (line / config_.indexDivisor) % numSets_;
    }

    CacheConfig config_;
    std::size_t numSets_;
    std::vector<Way> ways_;  ///< numSets_ x assoc, row-major
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t invalidations_ = 0;
};

} // namespace bfly

#endif // BUTTERFLY_SIM_CACHE_HPP
