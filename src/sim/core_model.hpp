/**
 * @file
 * In-order scalar core timing (Table 1: 1 GHz, in-order scalar).
 *
 * Charges one cycle per instruction plus the memory-system latency returned
 * by the CMP for accesses; allocation calls carry the extra instructions a
 * real malloc/free executes.
 */

#ifndef BUTTERFLY_SIM_CORE_MODEL_HPP
#define BUTTERFLY_SIM_CORE_MODEL_HPP

#include "common/types.hpp"
#include "trace/event.hpp"

namespace bfly {

/** Per-event application-side cost model. */
struct CoreModel
{
    /** Cycles for a non-memory instruction. */
    Cycles baseCost = 1;
    /** Extra instructions executed inside malloc/free themselves. */
    Cycles allocatorOverhead = 30;

    /**
     * Application cycles for @p e given the memory-system latency
     * @p mem_latency that the CMP charged for its access (0 if the event
     * touches no memory).
     */
    Cycles
    cost(const Event &e, Cycles mem_latency) const
    {
        switch (e.kind) {
          case EventKind::Alloc:
          case EventKind::Free:
            return allocatorOverhead + std::max(baseCost, mem_latency);
          case EventKind::Heartbeat:
            return 0;
          default:
            return std::max(baseCost, mem_latency);
        }
    }
};

} // namespace bfly

#endif // BUTTERFLY_SIM_CORE_MODEL_HPP
