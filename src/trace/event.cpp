#include "trace/event.hpp"

#include <sstream>

namespace bfly {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Read:      return "read";
      case EventKind::Write:     return "write";
      case EventKind::Alloc:     return "alloc";
      case EventKind::Free:      return "free";
      case EventKind::TaintSrc:  return "taint_src";
      case EventKind::Untaint:   return "untaint";
      case EventKind::Assign:    return "assign";
      case EventKind::Use:       return "use";
      case EventKind::Heartbeat: return "heartbeat";
      case EventKind::Barrier:   return "barrier";
      case EventKind::Nop:       return "nop";
      case EventKind::Lock:      return "lock";
      case EventKind::Unlock:    return "unlock";
      case EventKind::Output:    return "output";
      case EventKind::SiteSummary: return "site_summary";
    }
    return "?";
}

std::string
Event::toString() const
{
    std::ostringstream os;
    os << eventKindName(kind);
    if (kind == EventKind::SiteSummary) {
        os << " site " << site << " x" << summaryCount();
        return os.str();
    }
    if (addr != kNoAddr)
        os << " 0x" << std::hex << addr << std::dec;
    if (size != 0)
        os << " [" << size << "B]";
    if (nsrc >= 1)
        os << " <- 0x" << std::hex << src0 << std::dec;
    if (nsrc >= 2)
        os << ", 0x" << std::hex << src1 << std::dec;
    return os.str();
}

} // namespace bfly
