/**
 * @file
 * Slicing per-thread traces into heartbeat-delimited epochs.
 *
 * An epoch l contains one block per thread (paper Section 4.1, Figure 6).
 * Blocks within an epoch need not contain the same number of instructions —
 * the heartbeat only bounds them in time — and a thread may contribute an
 * empty block to an epoch. The slicer supports:
 *
 *  - heartbeat mode: cut wherever the logging platform inserted Heartbeat
 *    markers (the LBA prototype's mechanism), and
 *  - uniform mode: cut every h instructions, used when a trace was produced
 *    without embedded markers.
 */

#ifndef BUTTERFLY_TRACE_EPOCH_SLICER_HPP
#define BUTTERFLY_TRACE_EPOCH_SLICER_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "trace/trace.hpp"

namespace bfly {

/** A block (l, t): a read-only view of one thread's events in one epoch. */
struct BlockView
{
    EpochId epoch = 0;
    ThreadId thread = 0;
    std::span<const Event> events;

    std::size_t size() const { return events.size(); }
    bool empty() const { return events.empty(); }
};

/**
 * The epoch structure of a trace: for each thread, where each epoch's block
 * begins and ends. All threads are padded to the same epoch count.
 */
class EpochLayout
{
  public:
    /** Slice at embedded Heartbeat markers. */
    static EpochLayout fromHeartbeats(const Trace &trace);

    /** Slice every @p h non-heartbeat instructions per thread. */
    static EpochLayout uniform(const Trace &trace, std::size_t h);

    /**
     * Slice by *global* execution progress: an event whose gseq falls in
     * [k*H, (k+1)*H) lands in epoch k (clamped to be non-decreasing along
     * each thread so blocks stay contiguous under relaxed visibility).
     *
     * This models time-based heartbeats delivered to all cores: a thread
     * stalled at a barrier contributes empty blocks while others advance,
     * and the butterfly premise — everything in epoch l is globally
     * visible before anything in epoch l+2 executes — holds by
     * construction for any interleaving, provided per-thread visibility
     * reordering (store-buffer drift) is smaller than @p global_h.
     *
     * @param global_h  events per epoch across all threads (the paper
     *                  issues heartbeats after h*n instructions total)
     */
    static EpochLayout byGlobalSeq(const Trace &trace,
                                   std::size_t global_h);

    /**
     * Like byGlobalSeq, but each thread receives each heartbeat with an
     * independent random delay of up to @p max_skew global events —
     * the paper's delivery model (Section 4.1): heartbeats need not
     * arrive simultaneously, and an instruction an instantaneous
     * heartbeat would place in epoch l may land in l-1, l or l+1. The
     * butterfly guarantees must survive any skew below one epoch minus
     * the visibility-reordering window; the test suite checks zero
     * false negatives under this slicing.
     *
     * @pre max_skew < global_h (the paper sizes epochs to cover skew)
     */
    static EpochLayout byGlobalSeqSkewed(const Trace &trace,
                                         std::size_t global_h,
                                         std::size_t max_skew,
                                         std::uint64_t seed);

    std::size_t numEpochs() const { return numEpochs_; }
    std::size_t numThreads() const { return starts_.size(); }

    /** The block (l, t). Heartbeat markers are excluded from the view. */
    BlockView block(EpochId l, ThreadId t) const;

    /** All blocks of epoch l, indexed by thread. */
    std::vector<BlockView> epoch(EpochId l) const;

    /**
     * Per-thread instruction index (heartbeats excluded) of instruction
     * (l, t, i) — the stable identity used to match butterfly-flagged
     * events against oracle-flagged events.
     */
    std::size_t
    globalIndex(EpochId l, ThreadId t, InstrOffset i) const
    {
        return starts_[t][l] + i;
    }

  private:
    EpochLayout(const Trace &trace, std::size_t num_epochs,
                std::vector<std::vector<std::size_t>> starts,
                std::vector<std::vector<Event>> filtered);

    std::size_t numEpochs_ = 0;
    /** starts_[t][l] = index of block (l,t)'s first event in filtered_[t]. */
    std::vector<std::vector<std::size_t>> starts_;
    /** Per-thread events with heartbeats stripped. */
    std::vector<std::vector<Event>> filtered_;
    std::vector<ThreadId> tids_;
};

} // namespace bfly

#endif // BUTTERFLY_TRACE_EPOCH_SLICER_HPP
