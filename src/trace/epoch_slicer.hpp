/**
 * @file
 * Slicing per-thread traces into heartbeat-delimited epochs.
 *
 * An epoch l contains one block per thread (paper Section 4.1, Figure 6).
 * Blocks within an epoch need not contain the same number of instructions —
 * the heartbeat only bounds them in time — and a thread may contribute an
 * empty block to an epoch. The slicer supports:
 *
 *  - heartbeat mode: cut wherever the logging platform inserted Heartbeat
 *    markers (the LBA prototype's mechanism), and
 *  - uniform mode: cut every h instructions, used when a trace was produced
 *    without embedded markers.
 *
 * Two consumers exist for the epoch structure: EpochLayout materializes
 * the whole trace up front (oracles, the perf model, the barrier
 * schedule), while EpochStream slices the same boundaries incrementally
 * into a bounded ring so the pipelined schedule keeps only O(window)
 * epochs of events resident no matter how long the trace is.
 */

#ifndef BUTTERFLY_TRACE_EPOCH_SLICER_HPP
#define BUTTERFLY_TRACE_EPOCH_SLICER_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "trace/log_buffer.hpp"
#include "trace/trace.hpp"

namespace bfly {

/** A block (l, t): a read-only view of one thread's events in one epoch. */
struct BlockView
{
    EpochId epoch = 0;
    ThreadId thread = 0;
    std::span<const Event> events;
    /**
     * Per-thread index (heartbeats excluded) of events[0] in the
     * thread's full filtered stream: instruction i of this block has the
     * stable identity first + i, matching EpochLayout::globalIndex.
     * Carried in the view so lifeguards work identically over
     * materialized layouts and streamed (ring-resident) blocks.
     */
    std::size_t first = 0;

    std::size_t size() const { return events.size(); }
    bool empty() const { return events.empty(); }
};

/**
 * The epoch structure of a trace: for each thread, where each epoch's block
 * begins and ends. All threads are padded to the same epoch count.
 */
class EpochLayout
{
  public:
    /** Slice at embedded Heartbeat markers. */
    static EpochLayout fromHeartbeats(const Trace &trace);

    /** Slice every @p h non-heartbeat instructions per thread. */
    static EpochLayout uniform(const Trace &trace, std::size_t h);

    /**
     * Slice by *global* execution progress: an event whose gseq falls in
     * [k*H, (k+1)*H) lands in epoch k (clamped to be non-decreasing along
     * each thread so blocks stay contiguous under relaxed visibility).
     *
     * This models time-based heartbeats delivered to all cores: a thread
     * stalled at a barrier contributes empty blocks while others advance,
     * and the butterfly premise — everything in epoch l is globally
     * visible before anything in epoch l+2 executes — holds by
     * construction for any interleaving, provided per-thread visibility
     * reordering (store-buffer drift) is smaller than @p global_h.
     *
     * @param global_h  events per epoch across all threads (the paper
     *                  issues heartbeats after h*n instructions total)
     */
    static EpochLayout byGlobalSeq(const Trace &trace,
                                   std::size_t global_h);

    /**
     * Like byGlobalSeq, but each thread receives each heartbeat with an
     * independent random delay of up to @p max_skew global events —
     * the paper's delivery model (Section 4.1): heartbeats need not
     * arrive simultaneously, and an instruction an instantaneous
     * heartbeat would place in epoch l may land in l-1, l or l+1. The
     * butterfly guarantees must survive any skew below one epoch minus
     * the visibility-reordering window; the test suite checks zero
     * false negatives under this slicing.
     *
     * @pre max_skew < global_h (the paper sizes epochs to cover skew)
     */
    static EpochLayout byGlobalSeqSkewed(const Trace &trace,
                                         std::size_t global_h,
                                         std::size_t max_skew,
                                         std::uint64_t seed);

    /**
     * The heartbeat slicing of @p trace coarsened by @p spans: analyzed
     * epoch i merges spans[i] consecutive source (marker-delimited)
     * epochs, so sum(spans) must equal the marker epoch count. This is
     * the reference layout for an adaptive EpochStream run: rebuilding
     * it from the stream's realizedSpans() yields the exact boundary
     * table the stream analyzed, making remote and reference reports
     * bit-identical by construction. Merging markers only coarsens the
     * epoch structure (equivalent to the platform skipping heartbeats),
     * which is the butterfly's conservative direction — a merged
     * slicing can never introduce false negatives.
     */
    static EpochLayout
    coalescedFromHeartbeats(const Trace &trace,
                            std::span<const std::uint32_t> spans);

    std::size_t numEpochs() const { return numEpochs_; }
    std::size_t numThreads() const { return starts_.size(); }

    /** The block (l, t). Heartbeat markers are excluded from the view. */
    BlockView block(EpochId l, ThreadId t) const;

    /** All blocks of epoch l, indexed by thread. */
    std::vector<BlockView> epoch(EpochId l) const;

    /**
     * Per-thread instruction index (heartbeats excluded) of instruction
     * (l, t, i) — the stable identity used to match butterfly-flagged
     * events against oracle-flagged events.
     */
    std::size_t
    globalIndex(EpochId l, ThreadId t, InstrOffset i) const
    {
        return starts_[t][l] + i;
    }

  private:
    EpochLayout(const Trace &trace, std::size_t num_epochs,
                std::vector<std::vector<std::size_t>> starts,
                std::vector<std::vector<Event>> filtered);

    std::size_t numEpochs_ = 0;
    /** starts_[t][l] = index of block (l,t)'s first event in filtered_[t]. */
    std::vector<std::vector<std::size_t>> starts_;
    /** Per-thread events with heartbeats stripped. */
    std::vector<std::vector<Event>> filtered_;
    std::vector<ThreadId> tids_;
};

/**
 * Streaming counterpart of EpochLayout::byGlobalSeq: identical epoch
 * boundaries (one cheap boundary pre-pass over the trace, O(epochs)
 * index memory), but event payloads are copied into a bounded ring only
 * when an epoch is acquired and freed when it is retired — resident
 * event memory is O(windowEpochs), independent of trace length.
 *
 * The pipelined window schedule acquires epochs in order as its task
 * graph admits them and retires each epoch once every task reading its
 * events has completed. An optional LogBuffer models the back-pressure
 * the bounded window exerts on the logging platform: each event of an
 * epoch is produced into the buffer before admission and consumed at
 * admission, so epochs larger than the buffer surface producer stalls
 * exactly where the LBA hardware would stall the application core.
 *
 * acquire() calls must be in epoch order (the task graph's admission
 * chain is totally ordered); retire() calls must also be in order.
 * block() is safe to call concurrently with acquire()/retire() of
 * *other* epochs — the ring cells are disjoint and the schedule orders
 * cell reuse behind retirement.
 */
class EpochStream
{
  public:
    /**
     * Decides, for the analyzed epoch whose first source epoch is
     * @p leader, how many consecutive source epochs to merge into it.
     * @p epoch_events holds the per-source-epoch event counts (summed
     * over threads) so size-targeting policies can look ahead. Return
     * values are clamped to [1, epoch_events.size() - leader]; the
     * policy is consulted once per group, in leader order, when the
     * stream is constructed — each call may sample live telemetry, so
     * the realized slicing can vary group by group within one stream.
     */
    using ReslicePolicy = std::function<std::size_t(
        EpochId leader, std::span<const std::size_t> epoch_events)>;

    struct Config
    {
        /** Events per epoch across all threads (byGlobalSeq's H).
         *  Ignored when fromHeartbeats is set. */
        std::size_t globalH = 0;
        /** Ring capacity in epochs; >= 4 (the butterfly needs the body
         *  epoch, both wings, and the epoch being admitted). */
        std::size_t windowEpochs = 4;
        /** Optional occupancy model for admission back-pressure. */
        LogBuffer *backPressure = nullptr;
        /**
         * Cut at embedded Heartbeat markers instead of gseq buckets —
         * the same boundaries as EpochLayout::fromHeartbeats. This is
         * the only mode available to the monitoring service: logs that
         * crossed the wire carry no gseq (the codec drops execution
         * metadata), so the epoch structure must come from the markers
         * the logging platform embedded.
         */
        bool fromHeartbeats = false;
        /**
         * Optional coalescing policy (adaptive epoch sizing). When set,
         * the marker-delimited source epochs are merged into coarser
         * analyzed epochs group by group; numEpochs() then reports the
         * realized (merged) count and realizedSpans() records the
         * per-epoch merge widths so a bit-identical reference layout
         * can be rebuilt with EpochLayout::coalescedFromHeartbeats.
         * Null (the default) keeps the source slicing untouched.
         */
        ReslicePolicy reslice;
    };

    EpochStream(const Trace &trace, Config config);

    std::size_t numEpochs() const { return numEpochs_; }

    /** Marker-delimited epoch count before any coalescing. */
    std::size_t sourceEpochs() const { return sourceEpochs_; }

    /**
     * Per-analyzed-epoch source spans chosen by Config::reslice, in
     * epoch order; sums to sourceEpochs(). Empty when no policy ran
     * (the realized slicing is then the source slicing).
     */
    const std::vector<std::uint32_t> &realizedSpans() const
    {
        return spans_;
    }
    std::size_t numThreads() const { return starts_.size(); }
    std::size_t windowEpochs() const { return cells_.size(); }

    /** Slice epoch l's events into the ring. @pre l is the next
     *  unacquired epoch and fewer than windowEpochs epochs are resident. */
    void acquire(EpochId l);

    /** The block (l, t) of a currently resident epoch. */
    BlockView block(EpochId l, ThreadId t) const;

    /** Release epoch l's ring cell. @pre l is the oldest resident epoch. */
    void retire(EpochId l);

    std::size_t residentEpochs() const
    {
        return resident_.load(std::memory_order_acquire);
    }

    /** High-water mark of simultaneously resident epochs. */
    std::size_t peakResidentEpochs() const
    {
        return peakResident_.load(std::memory_order_acquire);
    }

    /** Producer stalls recorded in the back-pressure buffer (0 if none). */
    std::uint64_t producerStalls() const;

  private:
    /** Ring cell holding one resident epoch's per-thread events. */
    struct Cell
    {
        EpochId epoch = kNoEpoch;
        std::vector<std::vector<Event>> events; ///< [t]
        std::vector<std::size_t> first;         ///< [t] filtered offset
    };

    Cell &cellOf(EpochId l) { return cells_[l % cells_.size()]; }
    const Cell &cellOf(EpochId l) const { return cells_[l % cells_.size()]; }

    const Trace &trace_;
    std::size_t numEpochs_ = 0;
    std::size_t sourceEpochs_ = 0;
    std::vector<std::uint32_t> spans_;
    /** Same boundary table as EpochLayout::byGlobalSeq. */
    std::vector<std::vector<std::size_t>> starts_;
    std::vector<ThreadId> tids_;
    std::vector<Cell> cells_;

    // Per-thread streaming cursors (advanced only by in-order acquire).
    std::vector<std::size_t> rawPos_;     ///< index into raw events
    std::vector<std::size_t> filteredPos_; ///< non-heartbeat events passed
    EpochId nextAcquire_ = 0;
    EpochId nextRetire_ = 0;

    std::atomic<std::size_t> resident_{0};
    std::atomic<std::size_t> peakResident_{0};
    LogBuffer *backPressure_ = nullptr;
};

} // namespace bfly

#endif // BUTTERFLY_TRACE_EPOCH_SLICER_HPP
