/**
 * @file
 * Per-thread dynamic traces and the whole-program trace container.
 *
 * A Trace is the input to every monitoring mode: the butterfly lifeguards
 * consume the per-thread sequences independently (plus heartbeats), the
 * timesliced baseline consumes a serialized merge, and the oracles consume
 * the true interleaving recovered from the events' global sequence numbers.
 */

#ifndef BUTTERFLY_TRACE_TRACE_HPP
#define BUTTERFLY_TRACE_TRACE_HPP

#include <cstddef>
#include <vector>

#include "trace/event.hpp"

namespace bfly {

/** The dynamic event sequence of a single application thread. */
struct ThreadTrace
{
    ThreadId tid = 0;
    std::vector<Event> events;

    /** Events excluding heartbeat markers. */
    std::size_t instructionCount() const;

    /** Memory-access events (the denominator of the paper's Fig. 13). */
    std::size_t memoryAccessCount() const;
};

/** A complete multithreaded program trace. */
struct Trace
{
    std::vector<ThreadTrace> threads;

    std::size_t numThreads() const { return threads.size(); }

    std::size_t instructionCount() const;
    std::size_t memoryAccessCount() const;

    /**
     * Merge all threads into the actual execution order, sorted by the
     * events' global sequence numbers. Heartbeats are dropped.
     * @return vector of (tid, event) in execution order.
     */
    std::vector<std::pair<ThreadId, Event>> serializedByGseq() const;

    /**
     * Merge all threads round-robin (one event at a time), the way a
     * timesliced monitor on one core would see them if the OS rotated
     * threads at every quantum boundary. Heartbeats are dropped.
     */
    std::vector<std::pair<ThreadId, Event>>
    serializedRoundRobin(std::size_t quantum = 1) const;
};

} // namespace bfly

#endif // BUTTERFLY_TRACE_TRACE_HPP
