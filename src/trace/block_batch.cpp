#include "trace/block_batch.hpp"

namespace bfly {

void
BlockBatch::assign(const BlockView &block)
{
    epoch = block.epoch;
    thread = block.thread;
    first = block.first;

    const std::size_t n = block.size();
    kinds.resize(n);
    nsrc.resize(n);
    sizes.resize(n);
    addrs.resize(n);
    src0.resize(n);
    src1.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Event &e = block.events[i];
        kinds[i] = e.kind;
        nsrc[i] = e.nsrc;
        sizes[i] = e.size;
        addrs[i] = e.addr;
        src0[i] = e.src0;
        src1[i] = e.src1;
    }
}

} // namespace bfly
