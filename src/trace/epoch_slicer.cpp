#include "trace/epoch_slicer.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace bfly {

namespace {

/**
 * The byGlobalSeq boundary table, computed without materializing the
 * filtered event streams: starts[t][l] is the index (heartbeats
 * excluded) of block (l,t)'s first event. Shared by
 * EpochLayout::byGlobalSeq and EpochStream so the streamed epoch
 * structure is identical to the materialized one by construction.
 */
std::size_t
globalSeqStarts(const Trace &trace, std::size_t global_h,
                std::vector<std::vector<std::size_t>> &starts)
{
    ensure(global_h > 0, "global epoch size must be positive");
    starts.assign(trace.threads.size(), {});
    std::size_t max_epochs = 0;

    for (std::size_t t = 0; t < trace.threads.size(); ++t) {
        // Epoch of event i = its gseq bucket, clamped non-decreasing so
        // the block stays contiguous when relaxed visibility reordered
        // gseq slightly out of program order.
        starts[t].push_back(0);
        EpochId current = 0;
        std::size_t i = 0;
        for (const Event &e : trace.threads[t].events) {
            if (e.kind == EventKind::Heartbeat)
                continue;
            const std::uint64_t g = e.gseq > 0 ? e.gseq - 1 : 0;
            const EpochId epoch = std::max<EpochId>(current, g / global_h);
            while (current < epoch) {
                starts[t].push_back(i);
                ++current;
            }
            ++i;
        }
        starts[t].push_back(i);
        max_epochs = std::max(max_epochs, starts[t].size() - 1);
    }
    return max_epochs;
}

/**
 * The fromHeartbeats boundary table: block (l,t) spans the non-heartbeat
 * events between marker l-1 and marker l. Shared by EpochStream's
 * heartbeat mode so the streamed structure matches
 * EpochLayout::fromHeartbeats by construction.
 */
std::size_t
heartbeatStarts(const Trace &trace,
                std::vector<std::vector<std::size_t>> &starts)
{
    starts.assign(trace.threads.size(), {});
    std::size_t max_epochs = 0;
    for (std::size_t t = 0; t < trace.threads.size(); ++t) {
        starts[t].push_back(0);
        std::size_t i = 0;
        for (const Event &e : trace.threads[t].events) {
            if (e.kind == EventKind::Heartbeat)
                starts[t].push_back(i);
            else
                ++i;
        }
        starts[t].push_back(i);
        max_epochs = std::max(max_epochs, starts[t].size() - 1);
    }
    return max_epochs;
}

/**
 * Rewrite a padded boundary table (every thread numEpochs+1 entries) to
 * the coalesced slicing: analyzed epoch i spans spans[i] consecutive
 * source epochs, so its block simply runs from the first merged source
 * epoch's start to the start right past the last one. Shared by
 * EpochLayout::coalescedFromHeartbeats and EpochStream's reslice path
 * so both sides realize the identical boundary table.
 */
void
coalesceStarts(std::vector<std::vector<std::size_t>> &starts,
               std::size_t num_epochs,
               std::span<const std::uint32_t> spans)
{
    std::size_t total = 0;
    for (const std::uint32_t k : spans) {
        ensure(k >= 1, "coalescing spans must be positive");
        total += k;
    }
    ensure(total == num_epochs,
           "coalescing spans must cover every source epoch exactly once");

    for (auto &s : starts) {
        std::vector<std::size_t> merged;
        merged.reserve(spans.size() + 1);
        std::size_t cum = 0;
        merged.push_back(s[0]);
        for (const std::uint32_t k : spans) {
            cum += k;
            merged.push_back(s[cum]);
        }
        s = std::move(merged);
    }
}

} // namespace

EpochLayout::EpochLayout(const Trace &trace, std::size_t num_epochs,
                         std::vector<std::vector<std::size_t>> starts,
                         std::vector<std::vector<Event>> filtered)
    : numEpochs_(num_epochs), starts_(std::move(starts)),
      filtered_(std::move(filtered))
{
    tids_.reserve(trace.threads.size());
    for (const ThreadTrace &t : trace.threads)
        tids_.push_back(t.tid);

    // Pad every thread to the same epoch count with empty blocks.
    for (auto &s : starts_) {
        while (s.size() < numEpochs_ + 1)
            s.push_back(s.back());
    }
}

EpochLayout
EpochLayout::fromHeartbeats(const Trace &trace)
{
    std::vector<std::vector<std::size_t>> starts(trace.threads.size());
    std::vector<std::vector<Event>> filtered(trace.threads.size());
    std::size_t max_epochs = 0;

    for (std::size_t t = 0; t < trace.threads.size(); ++t) {
        starts[t].push_back(0);
        for (const Event &e : trace.threads[t].events) {
            if (e.kind == EventKind::Heartbeat)
                starts[t].push_back(filtered[t].size());
            else
                filtered[t].push_back(e);
        }
        // Close the final (possibly heartbeat-less) block.
        starts[t].push_back(filtered[t].size());
        max_epochs = std::max(max_epochs, starts[t].size() - 1);
    }
    return EpochLayout(trace, max_epochs, std::move(starts),
                       std::move(filtered));
}

EpochLayout
EpochLayout::coalescedFromHeartbeats(const Trace &trace,
                                     std::span<const std::uint32_t> spans)
{
    std::vector<std::vector<std::size_t>> starts(trace.threads.size());
    std::vector<std::vector<Event>> filtered(trace.threads.size());
    std::size_t max_epochs = 0;

    for (std::size_t t = 0; t < trace.threads.size(); ++t) {
        starts[t].push_back(0);
        for (const Event &e : trace.threads[t].events) {
            if (e.kind == EventKind::Heartbeat)
                starts[t].push_back(filtered[t].size());
            else
                filtered[t].push_back(e);
        }
        starts[t].push_back(filtered[t].size());
        max_epochs = std::max(max_epochs, starts[t].size() - 1);
    }
    // The coalescing transform needs the padded table (the private
    // constructor would normally pad after the fact).
    for (auto &s : starts) {
        while (s.size() < max_epochs + 1)
            s.push_back(s.back());
    }
    coalesceStarts(starts, max_epochs, spans);
    return EpochLayout(trace, spans.size(), std::move(starts),
                       std::move(filtered));
}

EpochLayout
EpochLayout::uniform(const Trace &trace, std::size_t h)
{
    ensure(h > 0, "uniform epoch size must be positive");
    std::vector<std::vector<std::size_t>> starts(trace.threads.size());
    std::vector<std::vector<Event>> filtered(trace.threads.size());
    std::size_t max_epochs = 0;

    for (std::size_t t = 0; t < trace.threads.size(); ++t) {
        for (const Event &e : trace.threads[t].events) {
            if (e.kind != EventKind::Heartbeat)
                filtered[t].push_back(e);
        }
        const std::size_t n = filtered[t].size();
        for (std::size_t pos = 0; ; pos += h) {
            starts[t].push_back(std::min(pos, n));
            if (pos >= n)
                break;
        }
        max_epochs = std::max(max_epochs, starts[t].size() - 1);
    }
    return EpochLayout(trace, max_epochs, std::move(starts),
                       std::move(filtered));
}

EpochLayout
EpochLayout::byGlobalSeq(const Trace &trace, std::size_t global_h)
{
    std::vector<std::vector<std::size_t>> starts;
    const std::size_t max_epochs = globalSeqStarts(trace, global_h, starts);

    std::vector<std::vector<Event>> filtered(trace.threads.size());
    for (std::size_t t = 0; t < trace.threads.size(); ++t) {
        for (const Event &e : trace.threads[t].events) {
            if (e.kind != EventKind::Heartbeat)
                filtered[t].push_back(e);
        }
    }
    return EpochLayout(trace, max_epochs, std::move(starts),
                       std::move(filtered));
}

EpochLayout
EpochLayout::byGlobalSeqSkewed(const Trace &trace, std::size_t global_h,
                               std::size_t max_skew, std::uint64_t seed)
{
    ensure(global_h > 0, "global epoch size must be positive");
    ensure(max_skew < global_h,
           "heartbeat skew must be below the epoch size (the paper "
           "sizes epochs to absorb delivery skew)");

    // Delivery delay of heartbeat k at thread t, deterministic in seed.
    auto skew_of = [&](std::size_t t, EpochId k) -> std::uint64_t {
        if (max_skew == 0)
            return 0;
        Rng rng(seed ^ (0x9e3779b97f4a7c15ull * (t + 1)) ^
                (0xc2b2ae3d27d4eb4full * (k + 1)));
        return rng.below(max_skew + 1);
    };

    std::vector<std::vector<std::size_t>> starts(trace.threads.size());
    std::vector<std::vector<Event>> filtered(trace.threads.size());
    std::size_t max_epochs = 0;

    for (std::size_t t = 0; t < trace.threads.size(); ++t) {
        for (const Event &e : trace.threads[t].events) {
            if (e.kind != EventKind::Heartbeat)
                filtered[t].push_back(e);
        }
        starts[t].push_back(0);
        EpochId current = 0;
        // Boundary of epoch k at thread t: heartbeat k's nominal time
        // k*global_h plus its delivery delay.
        auto boundary = [&](EpochId k) {
            return static_cast<std::uint64_t>(k) * global_h +
                   skew_of(t, k);
        };
        for (std::size_t i = 0; i < filtered[t].size(); ++i) {
            const std::uint64_t g =
                filtered[t][i].gseq > 0 ? filtered[t][i].gseq - 1 : 0;
            while (g >= boundary(current + 1)) {
                starts[t].push_back(i);
                ++current;
            }
        }
        starts[t].push_back(filtered[t].size());
        max_epochs = std::max(max_epochs, starts[t].size() - 1);
    }
    return EpochLayout(trace, max_epochs, std::move(starts),
                       std::move(filtered));
}

BlockView
EpochLayout::block(EpochId l, ThreadId t) const
{
    ensure(t < starts_.size(), "thread id out of range");
    ensure(l < numEpochs_, "epoch id out of range");
    const auto &s = starts_[t];
    const std::size_t begin = s[l];
    const std::size_t end = s[l + 1];
    return BlockView{
        l, tids_[t],
        std::span<const Event>(filtered_[t].data() + begin, end - begin),
        begin};
}

std::vector<BlockView>
EpochLayout::epoch(EpochId l) const
{
    std::vector<BlockView> blocks;
    blocks.reserve(starts_.size());
    for (ThreadId t = 0; t < starts_.size(); ++t)
        blocks.push_back(block(l, t));
    return blocks;
}

EpochStream::EpochStream(const Trace &trace, Config config)
    : trace_(trace), backPressure_(config.backPressure)
{
    ensure(config.windowEpochs >= 4,
           "EpochStream window must hold at least 4 epochs (body, both "
           "wings, and the epoch being admitted)");
    numEpochs_ = config.fromHeartbeats
                     ? heartbeatStarts(trace, starts_)
                     : globalSeqStarts(trace, config.globalH, starts_);

    // Pad every thread's boundary table to the same epoch count, exactly
    // as the EpochLayout constructor does.
    for (auto &s : starts_) {
        while (s.size() < numEpochs_ + 1)
            s.push_back(s.back());
    }
    sourceEpochs_ = numEpochs_;

    if (config.reslice && numEpochs_ > 0) {
        // Consult the policy once per group, in leader order. Each call
        // may sample live pressure, so the merge width can change from
        // group to group — the "h changes mid-stream" the adaptive
        // service advertises via EpochHint frames. Merging whole source
        // epochs keeps every realized boundary a heartbeat boundary, so
        // the 3-epoch window invariants hold on the coarsened slicing
        // exactly as they did on the source slicing.
        std::vector<std::size_t> epoch_events(numEpochs_, 0);
        for (const auto &s : starts_)
            for (std::size_t l = 0; l < numEpochs_; ++l)
                epoch_events[l] += s[l + 1] - s[l];

        std::size_t leader = 0;
        while (leader < numEpochs_) {
            std::size_t k = config.reslice(leader, epoch_events);
            k = std::clamp<std::size_t>(k, 1, numEpochs_ - leader);
            spans_.push_back(static_cast<std::uint32_t>(k));
            leader += k;
        }
        coalesceStarts(starts_, numEpochs_, spans_);
        numEpochs_ = spans_.size();
    }

    tids_.reserve(trace.threads.size());
    for (const ThreadTrace &t : trace.threads)
        tids_.push_back(t.tid);

    const std::size_t T = trace.threads.size();
    cells_.resize(config.windowEpochs);
    for (Cell &c : cells_) {
        c.events.resize(T);
        c.first.resize(T, 0);
    }
    rawPos_.assign(T, 0);
    filteredPos_.assign(T, 0);
}

void
EpochStream::acquire(EpochId l)
{
    ensure(l == nextAcquire_, "epochs must be acquired in order");
    ensure(l < numEpochs_, "epoch id out of range");
    Cell &cell = cellOf(l);
    ensure(cell.epoch == kNoEpoch,
           "EpochStream ring cell still resident (retire the oldest "
           "epoch before admitting a new one)");

    // Model the log-buffer occupancy at admission: the platform has
    // produced this epoch's events while the window was busy; admission
    // drains them. An epoch that exceeds the buffer records the stalls
    // the application core would have taken.
    const std::size_t T = starts_.size();
    if (backPressure_) {
        for (std::size_t t = 0; t < T; ++t) {
            const std::size_t n = starts_[t][l + 1] - starts_[t][l];
            for (std::size_t k = 0; k < n; ++k)
                backPressure_->produce();
        }
        backPressure_->heartbeat();
    }

    for (std::size_t t = 0; t < T; ++t) {
        std::vector<Event> &out = cell.events[t];
        out.clear();
        cell.first[t] = starts_[t][l];
        const std::size_t end = starts_[t][l + 1];
        const auto &raw = trace_.threads[t].events;
        while (filteredPos_[t] < end) {
            const Event &e = raw[rawPos_[t]++];
            if (e.kind == EventKind::Heartbeat)
                continue;
            out.push_back(e);
            ++filteredPos_[t];
            if (backPressure_)
                backPressure_->consume();
        }
    }
    cell.epoch = l;
    ++nextAcquire_;

    const std::size_t now =
        resident_.fetch_add(1, std::memory_order_acq_rel) + 1;
    std::size_t peak = peakResident_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peakResident_.compare_exchange_weak(peak, now,
                                                std::memory_order_acq_rel))
        ;
}

BlockView
EpochStream::block(EpochId l, ThreadId t) const
{
    ensure(t < starts_.size(), "thread id out of range");
    const Cell &cell = cellOf(l);
    ensure(cell.epoch == l, "block() requires a resident epoch");
    return BlockView{l, tids_[t],
                     std::span<const Event>(cell.events[t].data(),
                                            cell.events[t].size()),
                     cell.first[t]};
}

void
EpochStream::retire(EpochId l)
{
    ensure(l == nextRetire_, "epochs must be retired in order");
    Cell &cell = cellOf(l);
    ensure(cell.epoch == l, "retire() of a non-resident epoch");
    cell.epoch = kNoEpoch;
    // Keep the vectors' capacity: the ring reuses their storage for the
    // epoch that lands in this cell windowEpochs later.
    for (auto &v : cell.events)
        v.clear();
    ++nextRetire_;
    resident_.fetch_sub(1, std::memory_order_acq_rel);
}

std::uint64_t
EpochStream::producerStalls() const
{
    return backPressure_ ? backPressure_->producerStalls() : 0;
}

} // namespace bfly
