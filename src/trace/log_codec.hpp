/**
 * @file
 * Compressed binary encoding of per-thread event logs.
 *
 * The LBA platform ships each application thread's dynamic event stream
 * through an 8 KB on-chip buffer, so record size directly sets the
 * monitoring back-pressure (the timing model's bytes-per-record
 * parameter). This codec implements a realistic compact format:
 *
 *  - one opcode byte per event (kind + source-count + small-size flags);
 *  - LEB128 varints for sizes that do not fit the opcode;
 *  - zig-zag delta encoding of addresses against a per-stream last
 *    address, exploiting the spatial locality of real traces;
 *  - heartbeats and barriers encode in a single byte.
 *
 * Round-trip (encode then decode) is exact for every field the
 * lifeguards consume; gseq stamps are execution metadata and are *not*
 * encoded (a real log has no global order — that is the whole premise).
 * The per-event `site` id is likewise generation-side metadata and is
 * dropped — except on SiteSummary events, whose whole payload is the
 * (site, elided-count) pair the static elision pass emits in place of a
 * run of provably-uninteresting events (see src/staticpass/).
 */

#ifndef BUTTERFLY_TRACE_LOG_CODEC_HPP
#define BUTTERFLY_TRACE_LOG_CODEC_HPP

#include <cstdint>
#include <span>
#include <vector>

#include <string>

#include "trace/epoch_slicer.hpp"
#include "trace/trace.hpp"

namespace bfly {

/** Encodes one thread's event stream into a compact byte log. */
class LogEncoder
{
  public:
    /** Append one event to the log. */
    void encode(const Event &e);

    /** The encoded bytes so far. */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

    /** Events encoded. */
    std::size_t eventCount() const { return count_; }

    /** Mean bytes per encoded event (the timing model's record size). */
    double
    bytesPerEvent() const
    {
        return count_ ? static_cast<double>(bytes_.size()) / count_
                      : 0.0;
    }

  private:
    void putVarint(std::uint64_t v);
    void putSignedDelta(Addr addr);

    std::vector<std::uint8_t> bytes_;
    Addr lastAddr_ = 0;
    std::size_t count_ = 0;
};

/** Outcome of one incremental decode attempt. */
enum class DecodeStatus : std::uint8_t {
    Ok,       ///< one event decoded
    NeedMore, ///< the buffer ends mid-event; feed more bytes and retry
    Corrupt,  ///< structurally invalid input (bad kind, overlong varint,
              ///< flag on an addressless opcode, oversized field)
};

const char *decodeStatusName(DecodeStatus status);

/** Decodes a byte log produced by LogEncoder. */
class LogDecoder
{
  public:
    explicit LogDecoder(std::span<const std::uint8_t> bytes)
        : bytes_(bytes)
    {}

    /** True if another event is available. */
    bool done() const { return pos_ >= bytes_.size(); }

    /**
     * Decode the next event.
     * @pre !done()
     * Trusted-input convenience: aborts via fatal() on malformed bytes.
     * Untrusted input (wire frames, files) must use tryDecode instead.
     */
    Event decode();

    /**
     * Attempt to decode the next event without asserting. On Ok, @p out
     * holds the event and the cursor advances past it. On NeedMore or
     * Corrupt the decoder state (cursor and delta base) is unchanged, so
     * a NeedMore caller can retry after appending bytes to a fresh span
     * that extends this one (see ChunkedLogDecoder).
     */
    DecodeStatus tryDecode(Event &out);

    /** Bytes consumed so far. */
    std::size_t pos() const { return pos_; }

    /** Delta base for the next address field (stream state). */
    Addr lastAddr() const { return lastAddr_; }

    /** Restore stream state carried across spans (see ChunkedLogDecoder). */
    void restore(Addr last_addr) { lastAddr_ = last_addr; }

  private:
    DecodeStatus getVarint(std::uint64_t &v);
    DecodeStatus getSignedDelta(Addr &out);

    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
    Addr lastAddr_ = 0;
};

/**
 * Incremental decoder over a stream delivered in arbitrary chunks (wire
 * frames may split an event mid-varint). feed() appends bytes; next()
 * yields events until the buffered tail is a partial event (NeedMore) or
 * the stream is structurally invalid (Corrupt — sticky: a corrupt stream
 * never recovers, matching the wire protocol's drop-session policy).
 */
class ChunkedLogDecoder
{
  public:
    /** Append a chunk of encoded bytes to the pending buffer. */
    void feed(std::span<const std::uint8_t> bytes);

    /** Decode the next complete event out of the buffered bytes. */
    DecodeStatus next(Event &out);

    /** Events decoded so far (the per-thread instruction cursor). */
    std::size_t eventsDecoded() const { return eventsDecoded_; }

    /** Bytes buffered but not yet consumed by complete events. */
    std::size_t pendingBytes() const { return buffer_.size() - consumed_; }

  private:
    std::vector<std::uint8_t> buffer_;
    std::size_t consumed_ = 0;      ///< prefix already decoded
    Addr lastAddr_ = 0;             ///< delta base across chunks
    std::size_t eventsDecoded_ = 0;
    bool corrupt_ = false;
};

/** Encode a whole thread trace; convenience for tests and tools. */
std::vector<std::uint8_t> encodeEvents(const std::vector<Event> &events);

/** Decode a whole byte log. */
std::vector<Event> decodeEvents(std::span<const std::uint8_t> bytes);

/**
 * Copy of @p trace with Heartbeat markers inserted at @p layout's block
 * boundaries, so the epoch structure survives serialization (a stored
 * log has no global order — gseq is execution metadata and is dropped).
 */
Trace withHeartbeatMarkers(const Trace &trace, const EpochLayout &layout);

/**
 * Write a multithreaded trace to a log file (magic, thread count, then
 * per thread: tid + encoded byte length + bytes).
 * @return true on success.
 */
bool saveTrace(const Trace &trace, const std::string &path);

/**
 * Read a log file written by saveTrace.
 * @throws via fatal() on malformed input.
 */
Trace loadTrace(const std::string &path);

} // namespace bfly

#endif // BUTTERFLY_TRACE_LOG_CODEC_HPP
