/**
 * @file
 * The instruction-level application event model.
 *
 * A lifeguard sees one *event sequence per application thread* (Section 2 of
 * the paper). Each event is the lifeguard-relevant abstraction of one dynamic
 * application instruction: a memory access, an allocation call, a taint
 * source, or a data movement between locations. Heartbeat markers injected by
 * the logging platform delimit epochs.
 *
 * Events carry a global sequence number (@c gseq) stamped by the workload
 * scheduler with the order in which the simulated machine actually executed
 * them. The butterfly lifeguards never look at gseq across threads — that
 * information is exactly what the paper assumes is unavailable — but the
 * *oracle* lifeguards use it to replay the true interleaving and provide
 * ground truth for false-positive accounting.
 */

#ifndef BUTTERFLY_TRACE_EVENT_HPP
#define BUTTERFLY_TRACE_EVENT_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace bfly {

/** Kinds of lifeguard-relevant application events. */
enum class EventKind : std::uint8_t {
    Read,      ///< load of [addr, addr+size)
    Write,     ///< store to [addr, addr+size)
    Alloc,     ///< malloc returning [addr, addr+size)
    Free,      ///< free(addr)
    TaintSrc,  ///< untrusted input written to [addr, addr+size)
    Untaint,   ///< [addr, addr+size) overwritten with trusted data
    Assign,    ///< addr := unop(src0) or binop(src0, src1); moves taint
    Use,       ///< addr used in a critical way (jump target, format string)
    Heartbeat, ///< epoch delimiter injected by the logging platform
    Barrier,   ///< synchronization: all threads rendezvous (workloads use
               ///< this to be race-free; lifeguards ignore it)
    Nop,       ///< instruction with no lifeguard-relevant effect
    Lock,      ///< acquire the lock whose identity is @c addr
    Unlock,    ///< release the lock whose identity is @c addr
    Output,    ///< [addr, addr+size) flows to an output sink (LOG/SEND)
    SiteSummary, ///< stands in for @c summaryCount() elided events from
                 ///< emitting site @c site (static elision; see
                 ///< src/staticpass/). Every lifeguard treats it as a
                 ///< no-op; only event accounting reads the count.
};

/** Printable name of an event kind. */
const char *eventKindName(EventKind kind);

/** One dynamic application instruction as seen by a lifeguard. */
struct Event
{
    EventKind kind = EventKind::Nop;
    std::uint8_t nsrc = 0;   ///< number of valid sources (Assign only)
    std::uint16_t size = 0;  ///< bytes touched (accesses / allocs / taint)
    std::uint32_t site = 0;  ///< emitting site id (0 = unattributed); fills
                             ///< the former padding hole, so sizeof holds
    Addr addr = kNoAddr;     ///< destination or accessed address
    Addr src0 = kNoAddr;     ///< first source (Assign)
    Addr src1 = kNoAddr;     ///< second source (Assign)
    std::uint64_t gseq = 0;  ///< global execution order (oracle only)

    static Event
    read(Addr a, std::uint16_t sz = 4)
    {
        return {EventKind::Read, 0, sz, 0, a, kNoAddr, kNoAddr, 0};
    }

    static Event
    write(Addr a, std::uint16_t sz = 4)
    {
        return {EventKind::Write, 0, sz, 0, a, kNoAddr, kNoAddr, 0};
    }

    static Event
    alloc(Addr a, std::uint16_t sz)
    {
        return {EventKind::Alloc, 0, sz, 0, a, kNoAddr, kNoAddr, 0};
    }

    static Event
    freeOf(Addr a, std::uint16_t sz = 0)
    {
        return {EventKind::Free, 0, sz, 0, a, kNoAddr, kNoAddr, 0};
    }

    static Event
    taintSrc(Addr a, std::uint16_t sz = 1)
    {
        return {EventKind::TaintSrc, 0, sz, 0, a, kNoAddr, kNoAddr, 0};
    }

    static Event
    untaint(Addr a, std::uint16_t sz = 1)
    {
        return {EventKind::Untaint, 0, sz, 0, a, kNoAddr, kNoAddr, 0};
    }

    /** dst := unop(src). */
    static Event
    assign(Addr dst, Addr src)
    {
        return {EventKind::Assign, 1, 4, 0, dst, src, kNoAddr, 0};
    }

    /** dst := binop(srcA, srcB). */
    static Event
    assign2(Addr dst, Addr src_a, Addr src_b)
    {
        return {EventKind::Assign, 2, 4, 0, dst, src_a, src_b, 0};
    }

    static Event
    use(Addr a)
    {
        return {EventKind::Use, 0, 1, 0, a, kNoAddr, kNoAddr, 0};
    }

    static Event
    heartbeat()
    {
        return {EventKind::Heartbeat, 0, 0, 0, kNoAddr, kNoAddr, kNoAddr, 0};
    }

    static Event
    barrier()
    {
        return {EventKind::Barrier, 0, 0, 0, kNoAddr, kNoAddr, kNoAddr, 0};
    }

    static Event
    nop()
    {
        return {EventKind::Nop, 0, 0, 0, kNoAddr, kNoAddr, kNoAddr, 0};
    }

    static Event
    lock(Addr l)
    {
        return {EventKind::Lock, 0, 0, 0, l, kNoAddr, kNoAddr, 0};
    }

    static Event
    unlock(Addr l)
    {
        return {EventKind::Unlock, 0, 0, 0, l, kNoAddr, kNoAddr, 0};
    }

    static Event
    output(Addr a, std::uint16_t sz = 8)
    {
        return {EventKind::Output, 0, sz, 0, a, kNoAddr, kNoAddr, 0};
    }

    /**
     * Stand-in for @p count elided events emitted by site @p site_id.
     * The count rides in src0 (summaries have no sources); the encoder
     * caps it at 2^48-1, far beyond any real trace.
     */
    static Event
    siteSummary(std::uint32_t site_id, std::uint64_t count)
    {
        return {EventKind::SiteSummary, 0,      0, site_id,
                kNoAddr,                count, kNoAddr, 0};
    }

    /** Elided events this summary stands for (SiteSummary only). */
    std::uint64_t summaryCount() const { return src0; }

    /** True for events that read or write application memory. */
    bool
    isMemoryAccess() const
    {
        switch (kind) {
          case EventKind::Read:
          case EventKind::Write:
          case EventKind::Assign:
          case EventKind::Use:
          case EventKind::Output:
            return true;
          default:
            return false;
        }
    }

    /** Human-readable rendering for error reports and debugging. */
    std::string toString() const;
};

/** The session mux charges queued events at sizeof(Event); the wire and
 *  .bfz encodings quantize sizes around the same figure. Pin it so a
 *  field addition cannot silently change admission semantics. */
static_assert(sizeof(Event) == 40,
              "Event layout changed: audit SessionMux byte accounting "
              "and the log codec before relaxing this assert");

} // namespace bfly

#endif // BUTTERFLY_TRACE_EVENT_HPP
