/**
 * @file
 * Columnar (structure-of-arrays) view of one block's events.
 *
 * The decoder and slicer hand analysis code an AoS `Event` walk: 40
 * bytes per event, of which a pass-1 kernel typically touches a kind
 * byte, an address and a size. A BlockBatch transposes a BlockView into
 * parallel arrays — kinds / sizes / addresses / assign sources — so the
 * hot lifeguard kernels stream over dense columns instead of striding
 * through padded structs, and so bulk set-construction (sort by key,
 * run-length insert) has flat arrays to operate on.
 *
 * The transpose is a single linear pass over the block and is reused
 * across calls via a caller-owned BlockBatch (the vectors keep their
 * capacity). Batches are derived views: they hold no epoch state and
 * are valid only as long as the BlockView's underlying events are
 * resident (EpochLayout storage or an un-retired EpochStream cell).
 * Identity fields (epoch / thread / first) are carried over so batched
 * kernels report errors with exactly the same stable event identities
 * as the scalar walk.
 */

#ifndef BUTTERFLY_TRACE_BLOCK_BATCH_HPP
#define BUTTERFLY_TRACE_BLOCK_BATCH_HPP

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "trace/epoch_slicer.hpp"
#include "trace/event.hpp"

namespace bfly {

/**
 * Stable group-by-key permutation for batched kernels: fills @p order
 * with a permutation of [0, n) such that equal keys are adjacent, keys
 * ascend, and original order is preserved within each key. @p key maps
 * an index to its Addr key; @p scratch is caller-owned bucket storage
 * (reused across calls).
 *
 * Block-local key spaces are usually dense granule ranges, so the fast
 * path is a counting (radix) partition over [min, max] — two linear
 * passes, no comparisons — taken whenever the span is at most ~8x the
 * item count. Scattered key spaces (random soup) fall back to a stable
 * comparison sort of the indices.
 */
template <typename KeyFn>
void
groupByKey(std::size_t n, KeyFn &&key, std::vector<std::uint32_t> &scratch,
           std::vector<std::uint32_t> &order)
{
    order.resize(n);
    if (n == 0)
        return;
    Addr lo = key(std::size_t{0});
    Addr hi = lo;
    for (std::size_t i = 1; i < n; ++i) {
        const Addr k = key(i);
        lo = std::min(lo, k);
        hi = std::max(hi, k);
    }
    const Addr span = hi - lo + 1; // wraps to 0 on the full Addr range
    if (span != 0 && span <= 8 * static_cast<Addr>(n) + 64) {
        scratch.assign(static_cast<std::size_t>(span), 0);
        for (std::size_t i = 0; i < n; ++i)
            ++scratch[static_cast<std::size_t>(key(i) - lo)];
        std::uint32_t sum = 0;
        for (std::uint32_t &c : scratch) {
            const std::uint32_t count = c;
            c = sum;
            sum += count;
        }
        for (std::size_t i = 0; i < n; ++i)
            order[scratch[static_cast<std::size_t>(key(i) - lo)]++] =
                static_cast<std::uint32_t>(i);
    } else {
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      const Addr ka = key(a);
                      const Addr kb = key(b);
                      return ka != kb ? ka < kb : a < b;
                  });
    }
}

/** SoA transpose of one block (l, t); see file comment for lifetime. */
struct BlockBatch
{
    EpochId epoch = 0;
    ThreadId thread = 0;
    /** Per-thread filtered index of event 0 (same as BlockView::first). */
    std::size_t first = 0;

    // Parallel arrays, all of length size().
    std::vector<EventKind> kinds;
    std::vector<std::uint8_t> nsrc;   ///< valid sources (Assign only)
    std::vector<std::uint16_t> sizes; ///< bytes touched
    std::vector<Addr> addrs;          ///< destination / accessed address
    std::vector<Addr> src0;           ///< first source (Assign)
    std::vector<Addr> src1;           ///< second source (Assign)

    std::size_t size() const { return kinds.size(); }
    bool empty() const { return kinds.empty(); }

    /**
     * Repopulate this batch from @p block. Reuses the column vectors'
     * capacity, so a long-lived batch amortizes to zero allocations.
     */
    void assign(const BlockView &block);
};

} // namespace bfly

#endif // BUTTERFLY_TRACE_BLOCK_BATCH_HPP
