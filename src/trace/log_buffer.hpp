/**
 * @file
 * Bounded log buffer modeling the LBA per-thread log (Table 1: 8 KB).
 *
 * The log buffer couples an application core (producer) to its lifeguard
 * core (consumer). When the buffer is full the application stalls — this
 * back-pressure is what makes lifeguard processing time equal application
 * execution time in the paper's measurements (Section 7.1). The functional
 * payload is not stored here (the harness hands the lifeguard the events
 * directly); this class models *occupancy* for timing.
 */

#ifndef BUTTERFLY_TRACE_LOG_BUFFER_HPP
#define BUTTERFLY_TRACE_LOG_BUFFER_HPP

#include <cstddef>

#include "common/logging.hpp"
#include "common/types.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_span.hpp"

namespace bfly {

namespace detail {

/** Pre-interned log-buffer telemetry ids (one-time registration). */
struct LogBufferTelemetry
{
    telemetry::MetricId produced;
    telemetry::MetricId consumed;
    telemetry::MetricId producerStalls;
    telemetry::MetricId consumerIdles;
    telemetry::MetricId heartbeats;
    telemetry::MetricId occupancyHist;
    std::uint32_t stallEvent;
    std::uint32_t heartbeatEvent;
    std::uint32_t occupancyArg;

    static const LogBufferTelemetry &
    get()
    {
        static const LogBufferTelemetry m = [] {
            auto &r = telemetry::registry();
            auto &t = telemetry::tracer();
            LogBufferTelemetry s;
            s.produced = r.counter("bfly.logbuffer.produced");
            s.consumed = r.counter("bfly.logbuffer.consumed");
            s.producerStalls = r.counter("bfly.logbuffer.producer_stalls");
            s.consumerIdles = r.counter("bfly.logbuffer.consumer_idles");
            s.heartbeats = r.counter("bfly.logbuffer.heartbeats");
            s.occupancyHist = r.histogram("bfly.logbuffer.occupancy");
            s.stallEvent = t.internName("logbuffer.stall");
            s.heartbeatEvent = t.internName("logbuffer.heartbeat");
            s.occupancyArg = t.internName("occupancy");
            return s;
        }();
        return m;
    }
};

} // namespace detail

/** Occupancy model of a bounded single-producer single-consumer log. */
class LogBuffer
{
  public:
    /**
     * @param capacity_bytes  buffer size (8 KB in the paper)
     * @param record_bytes    bytes per event record (LBA packs ~16 B/event)
     */
    explicit LogBuffer(std::size_t capacity_bytes = 8 * 1024,
                       std::size_t record_bytes = 16)
        : capacityRecords_(capacity_bytes / record_bytes)
    {
        ensure(capacityRecords_ > 0, "log buffer must hold >= 1 record");
    }

    std::size_t capacity() const { return capacityRecords_; }
    std::size_t occupancy() const { return occupancy_; }
    bool full() const { return occupancy_ >= capacityRecords_; }
    bool empty() const { return occupancy_ == 0; }

    /**
     * Try to append one record.
     * @return true on success; false if full (producer must stall).
     */
    bool
    produce()
    {
        if (full()) {
            ++producerStalls_;
            if (telemetry::enabled()) {
                const auto &m = detail::LogBufferTelemetry::get();
                telemetry::registry().add(m.producerStalls);
                telemetry::tracer().instant(
                    m.stallEvent, telemetry::SpanTracer::kWallPid,
                    telemetry::SpanTracer::currentTid(), m.occupancyArg,
                    occupancy_);
            }
            return false;
        }
        ++occupancy_;
        ++produced_;
        if (telemetry::enabled())
            telemetry::registry().add(
                detail::LogBufferTelemetry::get().produced);
        return true;
    }

    /**
     * Try to consume one record.
     * @return true on success; false if empty (consumer idles).
     */
    bool
    consume()
    {
        if (empty()) {
            ++consumerIdles_;
            if (telemetry::enabled())
                telemetry::registry().add(
                    detail::LogBufferTelemetry::get().consumerIdles);
            return false;
        }
        --occupancy_;
        ++consumed_;
        if (telemetry::enabled())
            telemetry::registry().add(
                detail::LogBufferTelemetry::get().consumed);
        return true;
    }

    /**
     * Record a heartbeat marker passing through the log (epoch
     * boundary): publishes the occupancy histogram sample plus an
     * instant trace event, so a session trace shows where heartbeats
     * landed relative to back-pressure stalls.
     */
    void
    heartbeat()
    {
        ++heartbeats_;
        if (telemetry::enabled()) {
            const auto &m = detail::LogBufferTelemetry::get();
            telemetry::registry().add(m.heartbeats);
            telemetry::registry().observe(m.occupancyHist, occupancy_);
            telemetry::tracer().instant(
                m.heartbeatEvent, telemetry::SpanTracer::kWallPid,
                telemetry::SpanTracer::currentTid(), m.occupancyArg,
                occupancy_);
        }
    }

    std::uint64_t producerStalls() const { return producerStalls_; }
    std::uint64_t consumerIdles() const { return consumerIdles_; }
    std::uint64_t produced() const { return produced_; }
    std::uint64_t consumed() const { return consumed_; }
    std::uint64_t heartbeats() const { return heartbeats_; }

  private:
    std::size_t capacityRecords_;
    std::size_t occupancy_ = 0;
    std::uint64_t produced_ = 0;
    std::uint64_t consumed_ = 0;
    std::uint64_t producerStalls_ = 0;
    std::uint64_t consumerIdles_ = 0;
    std::uint64_t heartbeats_ = 0;
};

} // namespace bfly

#endif // BUTTERFLY_TRACE_LOG_BUFFER_HPP
