/**
 * @file
 * Bounded log buffer modeling the LBA per-thread log (Table 1: 8 KB).
 *
 * The log buffer couples an application core (producer) to its lifeguard
 * core (consumer). When the buffer is full the application stalls — this
 * back-pressure is what makes lifeguard processing time equal application
 * execution time in the paper's measurements (Section 7.1). The functional
 * payload is not stored here (the harness hands the lifeguard the events
 * directly); this class models *occupancy* for timing.
 */

#ifndef BUTTERFLY_TRACE_LOG_BUFFER_HPP
#define BUTTERFLY_TRACE_LOG_BUFFER_HPP

#include <cstddef>

#include "common/logging.hpp"
#include "common/types.hpp"

namespace bfly {

/** Occupancy model of a bounded single-producer single-consumer log. */
class LogBuffer
{
  public:
    /**
     * @param capacity_bytes  buffer size (8 KB in the paper)
     * @param record_bytes    bytes per event record (LBA packs ~16 B/event)
     */
    explicit LogBuffer(std::size_t capacity_bytes = 8 * 1024,
                       std::size_t record_bytes = 16)
        : capacityRecords_(capacity_bytes / record_bytes)
    {
        ensure(capacityRecords_ > 0, "log buffer must hold >= 1 record");
    }

    std::size_t capacity() const { return capacityRecords_; }
    std::size_t occupancy() const { return occupancy_; }
    bool full() const { return occupancy_ >= capacityRecords_; }
    bool empty() const { return occupancy_ == 0; }

    /**
     * Try to append one record.
     * @return true on success; false if full (producer must stall).
     */
    bool
    produce()
    {
        if (full()) {
            ++producerStalls_;
            return false;
        }
        ++occupancy_;
        ++produced_;
        return true;
    }

    /**
     * Try to consume one record.
     * @return true on success; false if empty (consumer idles).
     */
    bool
    consume()
    {
        if (empty()) {
            ++consumerIdles_;
            return false;
        }
        --occupancy_;
        ++consumed_;
        return true;
    }

    std::uint64_t producerStalls() const { return producerStalls_; }
    std::uint64_t consumerIdles() const { return consumerIdles_; }
    std::uint64_t produced() const { return produced_; }
    std::uint64_t consumed() const { return consumed_; }

  private:
    std::size_t capacityRecords_;
    std::size_t occupancy_ = 0;
    std::uint64_t produced_ = 0;
    std::uint64_t consumed_ = 0;
    std::uint64_t producerStalls_ = 0;
    std::uint64_t consumerIdles_ = 0;
};

} // namespace bfly

#endif // BUTTERFLY_TRACE_LOG_BUFFER_HPP
