#include "trace/trace.hpp"

#include <algorithm>

namespace bfly {

std::size_t
ThreadTrace::instructionCount() const
{
    std::size_t n = 0;
    for (const Event &e : events) {
        if (e.kind != EventKind::Heartbeat)
            ++n;
    }
    return n;
}

std::size_t
ThreadTrace::memoryAccessCount() const
{
    std::size_t n = 0;
    for (const Event &e : events) {
        if (e.isMemoryAccess())
            ++n;
    }
    return n;
}

std::size_t
Trace::instructionCount() const
{
    std::size_t n = 0;
    for (const ThreadTrace &t : threads)
        n += t.instructionCount();
    return n;
}

std::size_t
Trace::memoryAccessCount() const
{
    std::size_t n = 0;
    for (const ThreadTrace &t : threads)
        n += t.memoryAccessCount();
    return n;
}

std::vector<std::pair<ThreadId, Event>>
Trace::serializedByGseq() const
{
    std::vector<std::pair<ThreadId, Event>> merged;
    for (const ThreadTrace &t : threads) {
        for (const Event &e : t.events) {
            if (e.kind != EventKind::Heartbeat)
                merged.emplace_back(t.tid, e);
        }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const auto &a, const auto &b) {
                         return a.second.gseq < b.second.gseq;
                     });
    return merged;
}

std::vector<std::pair<ThreadId, Event>>
Trace::serializedRoundRobin(std::size_t quantum) const
{
    std::vector<std::pair<ThreadId, Event>> merged;
    std::vector<std::size_t> cursor(threads.size(), 0);
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t t = 0; t < threads.size(); ++t) {
            const auto &events = threads[t].events;
            for (std::size_t q = 0; q < quantum && cursor[t] < events.size();
                 ++cursor[t]) {
                const Event &e = events[cursor[t]];
                if (e.kind != EventKind::Heartbeat) {
                    merged.emplace_back(threads[t].tid, e);
                    ++q;
                }
                progress = true;
            }
        }
    }
    return merged;
}

} // namespace bfly
