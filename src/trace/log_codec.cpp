#include "trace/log_codec.hpp"

#include "common/logging.hpp"

namespace bfly {

namespace {

/** Opcode layout: kind(4) | size-follows(1) | nsrc(2) | unused(1). */
constexpr std::uint8_t kKindMask = 0x0f;
constexpr std::uint8_t kSizeFlag = 0x10;
constexpr unsigned kNsrcShift = 5;

/** SiteSummary count cap: a hostile varint may not claim more elided
 *  events than any real trace could hold (2^48 ~ 280 trillion). */
constexpr std::uint64_t kMaxSummaryCount = (1ull << 48) - 1;

/** Default size per kind (encoded only when it differs). */
std::uint16_t
defaultSize(EventKind kind)
{
    switch (kind) {
      case EventKind::Read:
      case EventKind::Write:
      case EventKind::Assign:
      case EventKind::TaintSrc:
      case EventKind::Untaint:
        return 8;
      case EventKind::Output:
        return 8;
      case EventKind::Use:
        return 1;
      default:
        return 0;
    }
}

bool
hasAddress(EventKind kind)
{
    switch (kind) {
      case EventKind::Heartbeat:
      case EventKind::Barrier:
      case EventKind::Nop:
      case EventKind::SiteSummary: // custom payload: site + count varints
        return false;
      default:
        return true;
    }
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

} // namespace

void
LogEncoder::putVarint(std::uint64_t v)
{
    while (v >= 0x80) {
        bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    bytes_.push_back(static_cast<std::uint8_t>(v));
}

void
LogEncoder::putSignedDelta(Addr addr)
{
    const std::int64_t delta = static_cast<std::int64_t>(addr) -
                               static_cast<std::int64_t>(lastAddr_);
    putVarint(zigzag(delta));
    lastAddr_ = addr;
}

void
LogEncoder::encode(const Event &e)
{
    const auto kind = static_cast<std::uint8_t>(e.kind);
    ensure(kind <= kKindMask, "event kind does not fit the opcode");

    if (e.kind == EventKind::SiteSummary) {
        ensure(e.summaryCount() >= 1 &&
                   e.summaryCount() <= kMaxSummaryCount,
               "site summary count out of range");
        bytes_.push_back(kind); // no size flag, no sources
        putVarint(e.site);
        putVarint(e.summaryCount());
        ++count_;
        return;
    }

    std::uint8_t opcode =
        kind | (static_cast<std::uint8_t>(e.nsrc) << kNsrcShift);
    const bool size_follows =
        hasAddress(e.kind) && e.size != defaultSize(e.kind);
    if (size_follows)
        opcode |= kSizeFlag;
    bytes_.push_back(opcode);

    if (hasAddress(e.kind)) {
        ensure(e.addr != kNoAddr, "addressed event without address");
        putSignedDelta(e.addr);
        if (size_follows)
            putVarint(e.size);
        if (e.nsrc >= 1)
            putSignedDelta(e.src0);
        if (e.nsrc >= 2)
            putSignedDelta(e.src1);
    }
    ++count_;
}

const char *
decodeStatusName(DecodeStatus status)
{
    switch (status) {
      case DecodeStatus::Ok:
        return "ok";
      case DecodeStatus::NeedMore:
        return "need-more";
      case DecodeStatus::Corrupt:
        return "corrupt";
    }
    return "?";
}

DecodeStatus
LogDecoder::getVarint(std::uint64_t &v)
{
    v = 0;
    unsigned shift = 0;
    for (;;) {
        if (pos_ >= bytes_.size())
            return DecodeStatus::NeedMore;
        const std::uint8_t b = bytes_[pos_++];
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return DecodeStatus::Ok;
        shift += 7;
        if (shift >= 64)
            return DecodeStatus::Corrupt; // overlong varint
    }
}

DecodeStatus
LogDecoder::getSignedDelta(Addr &out)
{
    std::uint64_t raw = 0;
    const DecodeStatus status = getVarint(raw);
    if (status != DecodeStatus::Ok)
        return status;
    lastAddr_ = static_cast<Addr>(static_cast<std::int64_t>(lastAddr_) +
                                  unzigzag(raw));
    out = lastAddr_;
    return DecodeStatus::Ok;
}

DecodeStatus
LogDecoder::tryDecode(Event &out)
{
    const std::size_t saved_pos = pos_;
    const Addr saved_addr = lastAddr_;
    auto fail = [&](DecodeStatus status) {
        pos_ = saved_pos;
        lastAddr_ = saved_addr;
        return status;
    };

    if (done())
        return DecodeStatus::NeedMore;
    const std::uint8_t opcode = bytes_[pos_++];
    Event e;
    e.kind = static_cast<EventKind>(opcode & kKindMask);
    if ((opcode & kKindMask) >
        static_cast<std::uint8_t>(EventKind::SiteSummary))
        return fail(DecodeStatus::Corrupt); // hole in the kind space
    e.nsrc = static_cast<std::uint8_t>(opcode >> kNsrcShift) & 0x3;
    if (e.nsrc > 2)
        return fail(DecodeStatus::Corrupt); // encoder emits 0..2 only
    e.size = defaultSize(e.kind);

    if (e.kind == EventKind::SiteSummary) {
        // Summaries carry no size flag or sources; the payload is two
        // varints (site id, elided-event count), both range-checked so
        // a hostile log can neither overflow the 32-bit site id nor
        // claim an absurd count.
        if ((opcode & kSizeFlag) || e.nsrc != 0)
            return fail(DecodeStatus::Corrupt);
        std::uint64_t site = 0, count = 0;
        DecodeStatus status = getVarint(site);
        if (status != DecodeStatus::Ok)
            return fail(status);
        if (site > 0xFFFFFFFFull)
            return fail(DecodeStatus::Corrupt); // site id is 32-bit
        status = getVarint(count);
        if (status != DecodeStatus::Ok)
            return fail(status);
        if (count == 0 || count > kMaxSummaryCount)
            return fail(DecodeStatus::Corrupt);
        e.site = static_cast<std::uint32_t>(site);
        e.src0 = count;
        out = e;
        return DecodeStatus::Ok;
    }

    if (!hasAddress(e.kind)) {
        // Addressless opcodes carry no payload; the encoder never sets
        // the size flag or a source count on them.
        if ((opcode & kSizeFlag) || e.nsrc != 0)
            return fail(DecodeStatus::Corrupt);
        out = e;
        return DecodeStatus::Ok;
    }

    DecodeStatus status = getSignedDelta(e.addr);
    if (status != DecodeStatus::Ok)
        return fail(status);
    if (opcode & kSizeFlag) {
        std::uint64_t size = 0;
        status = getVarint(size);
        if (status != DecodeStatus::Ok)
            return fail(status);
        if (size > 0xFFFF)
            return fail(DecodeStatus::Corrupt); // size is 16-bit
        e.size = static_cast<std::uint16_t>(size);
    }
    if (e.nsrc >= 1) {
        status = getSignedDelta(e.src0);
        if (status != DecodeStatus::Ok)
            return fail(status);
    }
    if (e.nsrc >= 2) {
        status = getSignedDelta(e.src1);
        if (status != DecodeStatus::Ok)
            return fail(status);
    }
    out = e;
    return DecodeStatus::Ok;
}

Event
LogDecoder::decode()
{
    ensure(!done(), "decode past the end of the event log");
    Event e;
    const DecodeStatus status = tryDecode(e);
    ensure(status == DecodeStatus::Ok,
           status == DecodeStatus::NeedMore
               ? "truncated event in log"
               : "corrupt event in log");
    return e;
}

// --------------------------------------------------------- ChunkedLogDecoder

void
ChunkedLogDecoder::feed(std::span<const std::uint8_t> bytes)
{
    // Drop the decoded prefix before growing; keeps the buffer sized to
    // one partial event plus the newest chunk.
    if (consumed_ > 0) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

DecodeStatus
ChunkedLogDecoder::next(Event &out)
{
    if (corrupt_)
        return DecodeStatus::Corrupt;
    LogDecoder dec(std::span<const std::uint8_t>(buffer_.data() + consumed_,
                                                 buffer_.size() - consumed_));
    dec.restore(lastAddr_);
    const DecodeStatus status = dec.tryDecode(out);
    switch (status) {
      case DecodeStatus::Ok:
        consumed_ += dec.pos();
        lastAddr_ = dec.lastAddr();
        ++eventsDecoded_;
        break;
      case DecodeStatus::Corrupt:
        corrupt_ = true;
        break;
      case DecodeStatus::NeedMore:
        break;
    }
    return status;
}

std::vector<std::uint8_t>
encodeEvents(const std::vector<Event> &events)
{
    LogEncoder enc;
    for (const Event &e : events)
        enc.encode(e);
    return enc.bytes();
}

std::vector<Event>
decodeEvents(std::span<const std::uint8_t> bytes)
{
    LogDecoder dec(bytes);
    std::vector<Event> events;
    while (!dec.done())
        events.push_back(dec.decode());
    return events;
}

Trace
withHeartbeatMarkers(const Trace &trace, const EpochLayout &layout)
{
    Trace out;
    out.threads.resize(trace.numThreads());
    for (ThreadId t = 0; t < trace.numThreads(); ++t) {
        out.threads[t].tid = trace.threads[t].tid;
        auto &events = out.threads[t].events;
        for (EpochId l = 0; l < layout.numEpochs(); ++l) {
            const BlockView block = layout.block(l, t);
            events.insert(events.end(), block.events.begin(),
                          block.events.end());
            if (l + 1 < layout.numEpochs())
                events.push_back(Event::heartbeat());
        }
    }
    return out;
}

namespace {
constexpr std::uint32_t kLogMagic = 0xb77e72f1; // "butterfly" log
}

bool
saveTrace(const Trace &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    auto put32 = [&](std::uint32_t v) {
        std::fwrite(&v, sizeof v, 1, f);
    };
    put32(kLogMagic);
    put32(static_cast<std::uint32_t>(trace.numThreads()));
    for (const ThreadTrace &tt : trace.threads) {
        const auto bytes = encodeEvents(tt.events);
        put32(tt.tid);
        put32(static_cast<std::uint32_t>(bytes.size()));
        std::fwrite(bytes.data(), 1, bytes.size(), f);
    }
    return std::fclose(f) == 0;
}

Trace
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open trace file: " + path);
    auto get32 = [&]() {
        std::uint32_t v = 0;
        if (std::fread(&v, sizeof v, 1, f) != 1)
            fatal("truncated trace file: " + path);
        return v;
    };
    if (get32() != kLogMagic)
        fatal("not a butterfly trace file: " + path);
    Trace trace;
    const std::uint32_t nthreads = get32();
    trace.threads.resize(nthreads);
    for (std::uint32_t t = 0; t < nthreads; ++t) {
        trace.threads[t].tid = get32();
        const std::uint32_t len = get32();
        std::vector<std::uint8_t> bytes(len);
        if (len && std::fread(bytes.data(), 1, len, f) != len)
            fatal("truncated trace file: " + path);
        trace.threads[t].events = decodeEvents(bytes);
    }
    std::fclose(f);
    return trace;
}

} // namespace bfly
