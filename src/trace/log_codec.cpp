#include "trace/log_codec.hpp"

#include "common/logging.hpp"

namespace bfly {

namespace {

/** Opcode layout: kind(4) | size-follows(1) | nsrc(2) | unused(1). */
constexpr std::uint8_t kKindMask = 0x0f;
constexpr std::uint8_t kSizeFlag = 0x10;
constexpr unsigned kNsrcShift = 5;

/** Default size per kind (encoded only when it differs). */
std::uint16_t
defaultSize(EventKind kind)
{
    switch (kind) {
      case EventKind::Read:
      case EventKind::Write:
      case EventKind::Assign:
      case EventKind::TaintSrc:
      case EventKind::Untaint:
        return 8;
      case EventKind::Use:
        return 1;
      default:
        return 0;
    }
}

bool
hasAddress(EventKind kind)
{
    switch (kind) {
      case EventKind::Heartbeat:
      case EventKind::Barrier:
      case EventKind::Nop:
        return false;
      default:
        return true;
    }
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

} // namespace

void
LogEncoder::putVarint(std::uint64_t v)
{
    while (v >= 0x80) {
        bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    bytes_.push_back(static_cast<std::uint8_t>(v));
}

void
LogEncoder::putSignedDelta(Addr addr)
{
    const std::int64_t delta = static_cast<std::int64_t>(addr) -
                               static_cast<std::int64_t>(lastAddr_);
    putVarint(zigzag(delta));
    lastAddr_ = addr;
}

void
LogEncoder::encode(const Event &e)
{
    const auto kind = static_cast<std::uint8_t>(e.kind);
    ensure(kind <= kKindMask, "event kind does not fit the opcode");

    std::uint8_t opcode =
        kind | (static_cast<std::uint8_t>(e.nsrc) << kNsrcShift);
    const bool size_follows =
        hasAddress(e.kind) && e.size != defaultSize(e.kind);
    if (size_follows)
        opcode |= kSizeFlag;
    bytes_.push_back(opcode);

    if (hasAddress(e.kind)) {
        ensure(e.addr != kNoAddr, "addressed event without address");
        putSignedDelta(e.addr);
        if (size_follows)
            putVarint(e.size);
        if (e.nsrc >= 1)
            putSignedDelta(e.src0);
        if (e.nsrc >= 2)
            putSignedDelta(e.src1);
    }
    ++count_;
}

std::uint64_t
LogDecoder::getVarint()
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
        ensure(pos_ < bytes_.size(), "truncated varint in event log");
        const std::uint8_t b = bytes_[pos_++];
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        ensure(shift < 64, "overlong varint in event log");
    }
}

Addr
LogDecoder::getSignedDelta()
{
    const std::int64_t delta = unzigzag(getVarint());
    lastAddr_ = static_cast<Addr>(
        static_cast<std::int64_t>(lastAddr_) + delta);
    return lastAddr_;
}

Event
LogDecoder::decode()
{
    ensure(!done(), "decode past the end of the event log");
    const std::uint8_t opcode = bytes_[pos_++];
    Event e;
    e.kind = static_cast<EventKind>(opcode & kKindMask);
    e.nsrc = static_cast<std::uint8_t>(opcode >> kNsrcShift) & 0x3;
    e.size = defaultSize(e.kind);

    if (hasAddress(e.kind)) {
        e.addr = getSignedDelta();
        if (opcode & kSizeFlag)
            e.size = static_cast<std::uint16_t>(getVarint());
        if (e.nsrc >= 1)
            e.src0 = getSignedDelta();
        if (e.nsrc >= 2)
            e.src1 = getSignedDelta();
    }
    return e;
}

std::vector<std::uint8_t>
encodeEvents(const std::vector<Event> &events)
{
    LogEncoder enc;
    for (const Event &e : events)
        enc.encode(e);
    return enc.bytes();
}

std::vector<Event>
decodeEvents(std::span<const std::uint8_t> bytes)
{
    LogDecoder dec(bytes);
    std::vector<Event> events;
    while (!dec.done())
        events.push_back(dec.decode());
    return events;
}

Trace
withHeartbeatMarkers(const Trace &trace, const EpochLayout &layout)
{
    Trace out;
    out.threads.resize(trace.numThreads());
    for (ThreadId t = 0; t < trace.numThreads(); ++t) {
        out.threads[t].tid = trace.threads[t].tid;
        auto &events = out.threads[t].events;
        for (EpochId l = 0; l < layout.numEpochs(); ++l) {
            const BlockView block = layout.block(l, t);
            events.insert(events.end(), block.events.begin(),
                          block.events.end());
            if (l + 1 < layout.numEpochs())
                events.push_back(Event::heartbeat());
        }
    }
    return out;
}

namespace {
constexpr std::uint32_t kLogMagic = 0xb77e72f1; // "butterfly" log
}

bool
saveTrace(const Trace &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    auto put32 = [&](std::uint32_t v) {
        std::fwrite(&v, sizeof v, 1, f);
    };
    put32(kLogMagic);
    put32(static_cast<std::uint32_t>(trace.numThreads()));
    for (const ThreadTrace &tt : trace.threads) {
        const auto bytes = encodeEvents(tt.events);
        put32(tt.tid);
        put32(static_cast<std::uint32_t>(bytes.size()));
        std::fwrite(bytes.data(), 1, bytes.size(), f);
    }
    return std::fclose(f) == 0;
}

Trace
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open trace file: " + path);
    auto get32 = [&]() {
        std::uint32_t v = 0;
        if (std::fread(&v, sizeof v, 1, f) != 1)
            fatal("truncated trace file: " + path);
        return v;
    };
    if (get32() != kLogMagic)
        fatal("not a butterfly trace file: " + path);
    Trace trace;
    const std::uint32_t nthreads = get32();
    trace.threads.resize(nthreads);
    for (std::uint32_t t = 0; t < nthreads; ++t) {
        trace.threads[t].tid = get32();
        const std::uint32_t len = get32();
        std::vector<std::uint8_t> bytes(len);
        if (len && std::fread(bytes.data(), 1, len, f) != len)
            fatal("truncated trace file: " + path);
        trace.threads[t].events = decodeEvents(bytes);
    }
    std::fclose(f);
    return trace;
}

} // namespace bfly
