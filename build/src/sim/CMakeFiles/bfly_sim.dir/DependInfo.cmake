
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/bfly_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/bfly_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/cmp.cpp" "src/sim/CMakeFiles/bfly_sim.dir/cmp.cpp.o" "gcc" "src/sim/CMakeFiles/bfly_sim.dir/cmp.cpp.o.d"
  "/root/repo/src/sim/lba.cpp" "src/sim/CMakeFiles/bfly_sim.dir/lba.cpp.o" "gcc" "src/sim/CMakeFiles/bfly_sim.dir/lba.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bfly_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bfly_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
