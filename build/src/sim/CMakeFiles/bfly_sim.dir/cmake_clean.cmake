file(REMOVE_RECURSE
  "CMakeFiles/bfly_sim.dir/cache.cpp.o"
  "CMakeFiles/bfly_sim.dir/cache.cpp.o.d"
  "CMakeFiles/bfly_sim.dir/cmp.cpp.o"
  "CMakeFiles/bfly_sim.dir/cmp.cpp.o.d"
  "CMakeFiles/bfly_sim.dir/lba.cpp.o"
  "CMakeFiles/bfly_sim.dir/lba.cpp.o.d"
  "libbfly_sim.a"
  "libbfly_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
