file(REMOVE_RECURSE
  "libbfly_sim.a"
)
