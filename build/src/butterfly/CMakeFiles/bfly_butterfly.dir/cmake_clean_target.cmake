file(REMOVE_RECURSE
  "libbfly_butterfly.a"
)
