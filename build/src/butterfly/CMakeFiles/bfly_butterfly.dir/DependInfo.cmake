
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/butterfly/reaching_defs.cpp" "src/butterfly/CMakeFiles/bfly_butterfly.dir/reaching_defs.cpp.o" "gcc" "src/butterfly/CMakeFiles/bfly_butterfly.dir/reaching_defs.cpp.o.d"
  "/root/repo/src/butterfly/reaching_exprs.cpp" "src/butterfly/CMakeFiles/bfly_butterfly.dir/reaching_exprs.cpp.o" "gcc" "src/butterfly/CMakeFiles/bfly_butterfly.dir/reaching_exprs.cpp.o.d"
  "/root/repo/src/butterfly/window.cpp" "src/butterfly/CMakeFiles/bfly_butterfly.dir/window.cpp.o" "gcc" "src/butterfly/CMakeFiles/bfly_butterfly.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bfly_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bfly_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
