# Empty compiler generated dependencies file for bfly_butterfly.
# This may be replaced when dependencies are built.
