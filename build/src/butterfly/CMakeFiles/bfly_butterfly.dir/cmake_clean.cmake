file(REMOVE_RECURSE
  "CMakeFiles/bfly_butterfly.dir/reaching_defs.cpp.o"
  "CMakeFiles/bfly_butterfly.dir/reaching_defs.cpp.o.d"
  "CMakeFiles/bfly_butterfly.dir/reaching_exprs.cpp.o"
  "CMakeFiles/bfly_butterfly.dir/reaching_exprs.cpp.o.d"
  "CMakeFiles/bfly_butterfly.dir/window.cpp.o"
  "CMakeFiles/bfly_butterfly.dir/window.cpp.o.d"
  "libbfly_butterfly.a"
  "libbfly_butterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
