
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lifeguards/addrcheck.cpp" "src/lifeguards/CMakeFiles/bfly_lifeguards.dir/addrcheck.cpp.o" "gcc" "src/lifeguards/CMakeFiles/bfly_lifeguards.dir/addrcheck.cpp.o.d"
  "/root/repo/src/lifeguards/addrcheck_oracle.cpp" "src/lifeguards/CMakeFiles/bfly_lifeguards.dir/addrcheck_oracle.cpp.o" "gcc" "src/lifeguards/CMakeFiles/bfly_lifeguards.dir/addrcheck_oracle.cpp.o.d"
  "/root/repo/src/lifeguards/defcheck.cpp" "src/lifeguards/CMakeFiles/bfly_lifeguards.dir/defcheck.cpp.o" "gcc" "src/lifeguards/CMakeFiles/bfly_lifeguards.dir/defcheck.cpp.o.d"
  "/root/repo/src/lifeguards/report.cpp" "src/lifeguards/CMakeFiles/bfly_lifeguards.dir/report.cpp.o" "gcc" "src/lifeguards/CMakeFiles/bfly_lifeguards.dir/report.cpp.o.d"
  "/root/repo/src/lifeguards/taintcheck.cpp" "src/lifeguards/CMakeFiles/bfly_lifeguards.dir/taintcheck.cpp.o" "gcc" "src/lifeguards/CMakeFiles/bfly_lifeguards.dir/taintcheck.cpp.o.d"
  "/root/repo/src/lifeguards/taintcheck_oracle.cpp" "src/lifeguards/CMakeFiles/bfly_lifeguards.dir/taintcheck_oracle.cpp.o" "gcc" "src/lifeguards/CMakeFiles/bfly_lifeguards.dir/taintcheck_oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bfly_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bfly_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/butterfly/CMakeFiles/bfly_butterfly.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
