# Empty dependencies file for bfly_lifeguards.
# This may be replaced when dependencies are built.
