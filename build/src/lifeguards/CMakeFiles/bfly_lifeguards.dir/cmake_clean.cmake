file(REMOVE_RECURSE
  "CMakeFiles/bfly_lifeguards.dir/addrcheck.cpp.o"
  "CMakeFiles/bfly_lifeguards.dir/addrcheck.cpp.o.d"
  "CMakeFiles/bfly_lifeguards.dir/addrcheck_oracle.cpp.o"
  "CMakeFiles/bfly_lifeguards.dir/addrcheck_oracle.cpp.o.d"
  "CMakeFiles/bfly_lifeguards.dir/defcheck.cpp.o"
  "CMakeFiles/bfly_lifeguards.dir/defcheck.cpp.o.d"
  "CMakeFiles/bfly_lifeguards.dir/report.cpp.o"
  "CMakeFiles/bfly_lifeguards.dir/report.cpp.o.d"
  "CMakeFiles/bfly_lifeguards.dir/taintcheck.cpp.o"
  "CMakeFiles/bfly_lifeguards.dir/taintcheck.cpp.o.d"
  "CMakeFiles/bfly_lifeguards.dir/taintcheck_oracle.cpp.o"
  "CMakeFiles/bfly_lifeguards.dir/taintcheck_oracle.cpp.o.d"
  "libbfly_lifeguards.a"
  "libbfly_lifeguards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_lifeguards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
