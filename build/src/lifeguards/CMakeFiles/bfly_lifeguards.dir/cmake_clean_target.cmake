file(REMOVE_RECURSE
  "libbfly_lifeguards.a"
)
