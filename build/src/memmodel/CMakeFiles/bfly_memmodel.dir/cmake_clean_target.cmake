file(REMOVE_RECURSE
  "libbfly_memmodel.a"
)
