
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memmodel/interleaver.cpp" "src/memmodel/CMakeFiles/bfly_memmodel.dir/interleaver.cpp.o" "gcc" "src/memmodel/CMakeFiles/bfly_memmodel.dir/interleaver.cpp.o.d"
  "/root/repo/src/memmodel/valid_orderings.cpp" "src/memmodel/CMakeFiles/bfly_memmodel.dir/valid_orderings.cpp.o" "gcc" "src/memmodel/CMakeFiles/bfly_memmodel.dir/valid_orderings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bfly_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bfly_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
