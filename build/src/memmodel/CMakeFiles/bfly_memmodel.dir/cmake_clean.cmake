file(REMOVE_RECURSE
  "CMakeFiles/bfly_memmodel.dir/interleaver.cpp.o"
  "CMakeFiles/bfly_memmodel.dir/interleaver.cpp.o.d"
  "CMakeFiles/bfly_memmodel.dir/valid_orderings.cpp.o"
  "CMakeFiles/bfly_memmodel.dir/valid_orderings.cpp.o.d"
  "libbfly_memmodel.a"
  "libbfly_memmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_memmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
