# Empty compiler generated dependencies file for bfly_memmodel.
# This may be replaced when dependencies are built.
