file(REMOVE_RECURSE
  "libbfly_harness.a"
)
