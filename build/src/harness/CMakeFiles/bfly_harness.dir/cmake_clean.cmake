file(REMOVE_RECURSE
  "CMakeFiles/bfly_harness.dir/perf_model.cpp.o"
  "CMakeFiles/bfly_harness.dir/perf_model.cpp.o.d"
  "CMakeFiles/bfly_harness.dir/session.cpp.o"
  "CMakeFiles/bfly_harness.dir/session.cpp.o.d"
  "libbfly_harness.a"
  "libbfly_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
