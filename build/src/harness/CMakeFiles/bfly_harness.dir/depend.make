# Empty dependencies file for bfly_harness.
# This may be replaced when dependencies are built.
