
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/barnes.cpp" "src/workloads/CMakeFiles/bfly_workloads.dir/barnes.cpp.o" "gcc" "src/workloads/CMakeFiles/bfly_workloads.dir/barnes.cpp.o.d"
  "/root/repo/src/workloads/blackscholes.cpp" "src/workloads/CMakeFiles/bfly_workloads.dir/blackscholes.cpp.o" "gcc" "src/workloads/CMakeFiles/bfly_workloads.dir/blackscholes.cpp.o.d"
  "/root/repo/src/workloads/bugs.cpp" "src/workloads/CMakeFiles/bfly_workloads.dir/bugs.cpp.o" "gcc" "src/workloads/CMakeFiles/bfly_workloads.dir/bugs.cpp.o.d"
  "/root/repo/src/workloads/fft.cpp" "src/workloads/CMakeFiles/bfly_workloads.dir/fft.cpp.o" "gcc" "src/workloads/CMakeFiles/bfly_workloads.dir/fft.cpp.o.d"
  "/root/repo/src/workloads/fmm.cpp" "src/workloads/CMakeFiles/bfly_workloads.dir/fmm.cpp.o" "gcc" "src/workloads/CMakeFiles/bfly_workloads.dir/fmm.cpp.o.d"
  "/root/repo/src/workloads/lu.cpp" "src/workloads/CMakeFiles/bfly_workloads.dir/lu.cpp.o" "gcc" "src/workloads/CMakeFiles/bfly_workloads.dir/lu.cpp.o.d"
  "/root/repo/src/workloads/ocean.cpp" "src/workloads/CMakeFiles/bfly_workloads.dir/ocean.cpp.o" "gcc" "src/workloads/CMakeFiles/bfly_workloads.dir/ocean.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/bfly_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/bfly_workloads.dir/synthetic.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/bfly_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/bfly_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bfly_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bfly_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
