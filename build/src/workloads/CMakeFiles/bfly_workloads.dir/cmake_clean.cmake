file(REMOVE_RECURSE
  "CMakeFiles/bfly_workloads.dir/barnes.cpp.o"
  "CMakeFiles/bfly_workloads.dir/barnes.cpp.o.d"
  "CMakeFiles/bfly_workloads.dir/blackscholes.cpp.o"
  "CMakeFiles/bfly_workloads.dir/blackscholes.cpp.o.d"
  "CMakeFiles/bfly_workloads.dir/bugs.cpp.o"
  "CMakeFiles/bfly_workloads.dir/bugs.cpp.o.d"
  "CMakeFiles/bfly_workloads.dir/fft.cpp.o"
  "CMakeFiles/bfly_workloads.dir/fft.cpp.o.d"
  "CMakeFiles/bfly_workloads.dir/fmm.cpp.o"
  "CMakeFiles/bfly_workloads.dir/fmm.cpp.o.d"
  "CMakeFiles/bfly_workloads.dir/lu.cpp.o"
  "CMakeFiles/bfly_workloads.dir/lu.cpp.o.d"
  "CMakeFiles/bfly_workloads.dir/ocean.cpp.o"
  "CMakeFiles/bfly_workloads.dir/ocean.cpp.o.d"
  "CMakeFiles/bfly_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/bfly_workloads.dir/synthetic.cpp.o.d"
  "CMakeFiles/bfly_workloads.dir/workload.cpp.o"
  "CMakeFiles/bfly_workloads.dir/workload.cpp.o.d"
  "libbfly_workloads.a"
  "libbfly_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
