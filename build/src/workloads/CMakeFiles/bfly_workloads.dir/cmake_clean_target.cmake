file(REMOVE_RECURSE
  "libbfly_workloads.a"
)
