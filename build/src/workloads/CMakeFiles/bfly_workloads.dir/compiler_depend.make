# Empty compiler generated dependencies file for bfly_workloads.
# This may be replaced when dependencies are built.
