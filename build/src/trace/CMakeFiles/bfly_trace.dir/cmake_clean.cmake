file(REMOVE_RECURSE
  "CMakeFiles/bfly_trace.dir/epoch_slicer.cpp.o"
  "CMakeFiles/bfly_trace.dir/epoch_slicer.cpp.o.d"
  "CMakeFiles/bfly_trace.dir/event.cpp.o"
  "CMakeFiles/bfly_trace.dir/event.cpp.o.d"
  "CMakeFiles/bfly_trace.dir/log_codec.cpp.o"
  "CMakeFiles/bfly_trace.dir/log_codec.cpp.o.d"
  "CMakeFiles/bfly_trace.dir/trace.cpp.o"
  "CMakeFiles/bfly_trace.dir/trace.cpp.o.d"
  "libbfly_trace.a"
  "libbfly_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
