
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/epoch_slicer.cpp" "src/trace/CMakeFiles/bfly_trace.dir/epoch_slicer.cpp.o" "gcc" "src/trace/CMakeFiles/bfly_trace.dir/epoch_slicer.cpp.o.d"
  "/root/repo/src/trace/event.cpp" "src/trace/CMakeFiles/bfly_trace.dir/event.cpp.o" "gcc" "src/trace/CMakeFiles/bfly_trace.dir/event.cpp.o.d"
  "/root/repo/src/trace/log_codec.cpp" "src/trace/CMakeFiles/bfly_trace.dir/log_codec.cpp.o" "gcc" "src/trace/CMakeFiles/bfly_trace.dir/log_codec.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/bfly_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/bfly_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bfly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
