file(REMOVE_RECURSE
  "libbfly_trace.a"
)
