# Empty dependencies file for bfly_trace.
# This may be replaced when dependencies are built.
