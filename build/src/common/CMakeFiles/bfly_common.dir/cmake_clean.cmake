file(REMOVE_RECURSE
  "CMakeFiles/bfly_common.dir/heap.cpp.o"
  "CMakeFiles/bfly_common.dir/heap.cpp.o.d"
  "libbfly_common.a"
  "libbfly_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
