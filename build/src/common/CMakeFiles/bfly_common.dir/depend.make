# Empty dependencies file for bfly_common.
# This may be replaced when dependencies are built.
