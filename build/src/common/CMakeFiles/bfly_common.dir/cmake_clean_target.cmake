file(REMOVE_RECURSE
  "libbfly_common.a"
)
