# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_memmodel[1]_include.cmake")
include("/root/repo/build/tests/test_reaching_defs[1]_include.cmake")
include("/root/repo/build/tests/test_reaching_exprs[1]_include.cmake")
include("/root/repo/build/tests/test_addrcheck[1]_include.cmake")
include("/root/repo/build/tests/test_taintcheck[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_log_codec[1]_include.cmake")
include("/root/repo/build/tests/test_defcheck[1]_include.cmake")
include("/root/repo/build/tests/test_butterfly_core[1]_include.cmake")
