# Empty dependencies file for test_log_codec.
# This may be replaced when dependencies are built.
