file(REMOVE_RECURSE
  "CMakeFiles/test_butterfly_core.dir/test_butterfly_core.cpp.o"
  "CMakeFiles/test_butterfly_core.dir/test_butterfly_core.cpp.o.d"
  "test_butterfly_core"
  "test_butterfly_core.pdb"
  "test_butterfly_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_butterfly_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
