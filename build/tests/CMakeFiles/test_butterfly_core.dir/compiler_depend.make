# Empty compiler generated dependencies file for test_butterfly_core.
# This may be replaced when dependencies are built.
