# Empty dependencies file for test_reaching_exprs.
# This may be replaced when dependencies are built.
