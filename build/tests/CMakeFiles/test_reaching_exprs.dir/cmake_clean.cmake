file(REMOVE_RECURSE
  "CMakeFiles/test_reaching_exprs.dir/test_reaching_exprs.cpp.o"
  "CMakeFiles/test_reaching_exprs.dir/test_reaching_exprs.cpp.o.d"
  "test_reaching_exprs"
  "test_reaching_exprs.pdb"
  "test_reaching_exprs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reaching_exprs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
