file(REMOVE_RECURSE
  "CMakeFiles/test_memmodel.dir/test_memmodel.cpp.o"
  "CMakeFiles/test_memmodel.dir/test_memmodel.cpp.o.d"
  "test_memmodel"
  "test_memmodel.pdb"
  "test_memmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
