# Empty compiler generated dependencies file for test_memmodel.
# This may be replaced when dependencies are built.
