file(REMOVE_RECURSE
  "CMakeFiles/test_reaching_defs.dir/test_reaching_defs.cpp.o"
  "CMakeFiles/test_reaching_defs.dir/test_reaching_defs.cpp.o.d"
  "test_reaching_defs"
  "test_reaching_defs.pdb"
  "test_reaching_defs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reaching_defs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
