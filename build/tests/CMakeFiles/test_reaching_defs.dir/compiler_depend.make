# Empty compiler generated dependencies file for test_reaching_defs.
# This may be replaced when dependencies are built.
