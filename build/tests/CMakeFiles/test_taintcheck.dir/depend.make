# Empty dependencies file for test_taintcheck.
# This may be replaced when dependencies are built.
