file(REMOVE_RECURSE
  "CMakeFiles/test_taintcheck.dir/test_taintcheck.cpp.o"
  "CMakeFiles/test_taintcheck.dir/test_taintcheck.cpp.o.d"
  "test_taintcheck"
  "test_taintcheck.pdb"
  "test_taintcheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taintcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
