# Empty compiler generated dependencies file for test_addrcheck.
# This may be replaced when dependencies are built.
