file(REMOVE_RECURSE
  "CMakeFiles/test_addrcheck.dir/test_addrcheck.cpp.o"
  "CMakeFiles/test_addrcheck.dir/test_addrcheck.cpp.o.d"
  "test_addrcheck"
  "test_addrcheck.pdb"
  "test_addrcheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_addrcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
