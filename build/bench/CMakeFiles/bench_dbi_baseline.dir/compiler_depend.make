# Empty compiler generated dependencies file for bench_dbi_baseline.
# This may be replaced when dependencies are built.
