file(REMOVE_RECURSE
  "CMakeFiles/bench_dbi_baseline.dir/bench_dbi_baseline.cpp.o"
  "CMakeFiles/bench_dbi_baseline.dir/bench_dbi_baseline.cpp.o.d"
  "bench_dbi_baseline"
  "bench_dbi_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dbi_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
