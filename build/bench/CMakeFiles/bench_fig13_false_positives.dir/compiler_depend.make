# Empty compiler generated dependencies file for bench_fig13_false_positives.
# This may be replaced when dependencies are built.
