# Empty dependencies file for bench_fig12_epoch_size.
# This may be replaced when dependencies are built.
