
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_passes.cpp" "bench/CMakeFiles/bench_ablation_passes.dir/bench_ablation_passes.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_passes.dir/bench_ablation_passes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/bfly_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/lifeguards/CMakeFiles/bfly_lifeguards.dir/DependInfo.cmake"
  "/root/repo/build/src/butterfly/CMakeFiles/bfly_butterfly.dir/DependInfo.cmake"
  "/root/repo/build/src/memmodel/CMakeFiles/bfly_memmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfly_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/bfly_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bfly_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bfly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
