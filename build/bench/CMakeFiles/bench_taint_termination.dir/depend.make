# Empty dependencies file for bench_taint_termination.
# This may be replaced when dependencies are built.
