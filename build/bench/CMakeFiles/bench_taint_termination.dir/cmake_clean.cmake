file(REMOVE_RECURSE
  "CMakeFiles/bench_taint_termination.dir/bench_taint_termination.cpp.o"
  "CMakeFiles/bench_taint_termination.dir/bench_taint_termination.cpp.o.d"
  "bench_taint_termination"
  "bench_taint_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_taint_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
