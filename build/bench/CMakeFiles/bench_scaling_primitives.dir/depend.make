# Empty dependencies file for bench_scaling_primitives.
# This may be replaced when dependencies are built.
