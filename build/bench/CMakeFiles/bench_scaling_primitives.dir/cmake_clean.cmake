file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_primitives.dir/bench_scaling_primitives.cpp.o"
  "CMakeFiles/bench_scaling_primitives.dir/bench_scaling_primitives.cpp.o.d"
  "bench_scaling_primitives"
  "bench_scaling_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
