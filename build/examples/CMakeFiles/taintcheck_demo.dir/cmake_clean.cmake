file(REMOVE_RECURSE
  "CMakeFiles/taintcheck_demo.dir/taintcheck_demo.cpp.o"
  "CMakeFiles/taintcheck_demo.dir/taintcheck_demo.cpp.o.d"
  "taintcheck_demo"
  "taintcheck_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taintcheck_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
