# Empty compiler generated dependencies file for taintcheck_demo.
# This may be replaced when dependencies are built.
