file(REMOVE_RECURSE
  "CMakeFiles/addrcheck_demo.dir/addrcheck_demo.cpp.o"
  "CMakeFiles/addrcheck_demo.dir/addrcheck_demo.cpp.o.d"
  "addrcheck_demo"
  "addrcheck_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/addrcheck_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
