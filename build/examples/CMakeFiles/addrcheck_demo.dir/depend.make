# Empty dependencies file for addrcheck_demo.
# This may be replaced when dependencies are built.
