file(REMOVE_RECURSE
  "CMakeFiles/epoch_tuning.dir/epoch_tuning.cpp.o"
  "CMakeFiles/epoch_tuning.dir/epoch_tuning.cpp.o.d"
  "epoch_tuning"
  "epoch_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
