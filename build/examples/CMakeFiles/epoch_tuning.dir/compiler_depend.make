# Empty compiler generated dependencies file for epoch_tuning.
# This may be replaced when dependencies are built.
