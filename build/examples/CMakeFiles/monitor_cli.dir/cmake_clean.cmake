file(REMOVE_RECURSE
  "CMakeFiles/monitor_cli.dir/monitor_cli.cpp.o"
  "CMakeFiles/monitor_cli.dir/monitor_cli.cpp.o.d"
  "monitor_cli"
  "monitor_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
