# Empty compiler generated dependencies file for monitor_cli.
# This may be replaced when dependencies are built.
